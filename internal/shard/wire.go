package shard

import (
	"errors"
	"fmt"

	"lmc/internal/codec"
	"lmc/internal/core"
)

// Version is the wire-protocol version. A worker refuses a HELLO carrying a
// different version, so mixed-build coordinator/worker pairs fail fast at
// the handshake instead of diverging mid-run. Version 2 is the streaming
// protocol: workers run rounds autonomously after PASS, each round's
// action/delivery/anchor records travel in one RECORDS frame, and digests
// are exchanged at batch boundaries instead of every round.
const Version = 2

// ErrVersionMismatch is the typed refusal a worker returns for a HELLO
// whose protocol version differs from its own; the coordinator sees the
// refusal as an ERROR frame during the handshake and degrades in-process.
var ErrVersionMismatch = errors.New("shard: wire protocol version mismatch")

// frameType is the first payload byte of every frame (the rest is the
// codec-encoded body). Each side always knows which frame types are
// acceptable next — so a type outside the expected set is a protocol
// error, not a dispatch choice.
type frameType byte

const (
	// ftHello (C→W) opens the session: protocol version, workload spec, the
	// worker's shard index/count, the digest batch window, and the
	// exploration-shaping options.
	ftHello frameType = 1 + iota
	// ftReady (W→C) acknowledges a HELLO after the replica is built; it
	// carries whether the worker accepted the invariant-sharding request.
	ftReady
	// ftError (W→C) reports a worker-side failure with a message; the
	// worker exits after sending it.
	ftError
	// ftPass (C→W) announces a fresh exploration pass and its local bound;
	// the worker then streams the pass's rounds autonomously.
	ftPass
	// ftRecords (W→C) carries one round's captured records: action records,
	// delivery records, and anchor reports, plus the round's progress flag.
	ftRecords
	// ftDigest (W→C) carries the worker's replica digest; sent after the
	// last round of every digest batch and at the pass fixpoint.
	ftDigest
	// ftDone (C→W) ends the session cleanly; accepted at every worker
	// receive point.
	ftDone
)

// String names the frame type for protocol errors.
func (t frameType) String() string {
	switch t {
	case ftHello:
		return "HELLO"
	case ftReady:
		return "READY"
	case ftError:
		return "ERROR"
	case ftPass:
		return "PASS"
	case ftRecords:
		return "RECORDS"
	case ftDigest:
		return "DIGEST"
	case ftDone:
		return "DONE"
	default:
		return fmt.Sprintf("frame(%d)", byte(t))
	}
}

// hello is the handshake body. The option fields are the coordinator's RAW
// (unresolved) values: both sides resolve defaults through the same
// core.newChecker path, so shipping them unresolved keeps a single source of
// truth for the defaults.
type hello struct {
	Version int
	Spec    string
	Idx     int // 1..Count-1; shard 0 is the coordinator
	Count   int // total process count, coordinator included

	DupLimit         int
	LocalBound       int
	MaxPathDepth     int
	MaxPredecessors  int
	RoundDeliveryCap int
	// MaxTransitions travels because it is a replicated stop criterion:
	// charged in the canonical order, it cuts every replica off at the
	// same transition. MaxSystemDepth travels because it filters the
	// combination sweeps whose counts anchor reports carry.
	MaxTransitions int
	MaxSystemDepth int

	// Batch is the digest cadence (rounds per digest exchange).
	Batch int
	// ActionRecords asks the worker to capture action-phase records;
	// ShardInvariants asks it to sweep and report the system-state
	// combinations of the anchors it owns.
	ActionRecords   bool
	ShardInvariants bool
}

func (h hello) encode(w *codec.Writer) {
	w.Int(h.Version)
	w.String(h.Spec)
	w.Int(h.Idx)
	w.Int(h.Count)
	w.Int(h.DupLimit)
	w.Int(h.LocalBound)
	w.Int(h.MaxPathDepth)
	w.Int(h.MaxPredecessors)
	w.Int(h.RoundDeliveryCap)
	w.Int(h.MaxTransitions)
	w.Int(h.MaxSystemDepth)
	w.Int(h.Batch)
	w.Bool(h.ActionRecords)
	w.Bool(h.ShardInvariants)
}

func decodeHello(r *codec.Reader) hello {
	return hello{
		Version:          r.Int(),
		Spec:             r.String(),
		Idx:              r.Int(),
		Count:            r.Int(),
		DupLimit:         r.Int(),
		LocalBound:       r.Int(),
		MaxPathDepth:     r.Int(),
		MaxPredecessors:  r.Int(),
		RoundDeliveryCap: r.Int(),
		MaxTransitions:   r.Int(),
		MaxSystemDepth:   r.Int(),
		Batch:            r.Int(),
		ActionRecords:    r.Bool(),
		ShardInvariants:  r.Bool(),
	}
}

// Minimum encoded sizes of the record kinds; decode guards element counts
// against them so a corrupted count cannot force a giant allocation.
const (
	recordWireMin       = 17 // entry + parent + rejected flag
	actionRecordWireMin = 25 // node + parent + action + rejected flag
	anchorReportWireMin = 33 // node + seq + violated + combos + maxdepth
)

func encodeRecords(w *codec.Writer, recs []core.DeliveryRecord) {
	w.Int(len(recs))
	for i := range recs {
		r := &recs[i]
		w.Int(r.Entry)
		w.Uint64(uint64(r.Parent))
		w.Bool(r.Rejected)
		if r.Rejected {
			continue
		}
		w.Uint64(uint64(r.Succ))
		w.Int(len(r.Emitted))
		for _, fp := range r.Emitted {
			w.Uint64(uint64(fp))
		}
	}
}

// decodeRecords reads a delivery-record batch. Malformed input never panics
// or over-allocates: counts are clamped against the bytes actually
// remaining, and truncation sticks an error on the reader (checked by the
// caller).
func decodeRecords(r *codec.Reader) []core.DeliveryRecord {
	n := r.Int()
	if n <= 0 || n > r.Remaining()/recordWireMin+1 {
		if n != 0 {
			// Either corrupt or truncated; draining the reader as records
			// would error anyway, so just report none.
			r.Int() // provoke a sticky error on short input
		}
		return nil
	}
	recs := make([]core.DeliveryRecord, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		rec := core.DeliveryRecord{
			Entry:    r.Int(),
			Parent:   codec.Fingerprint(r.Uint64()),
			Rejected: r.Bool(),
		}
		if !rec.Rejected {
			rec.Succ = codec.Fingerprint(r.Uint64())
			ne := r.Int()
			if ne < 0 || ne > r.Remaining()/8+1 {
				return recs
			}
			if ne > 0 {
				rec.Emitted = make([]codec.Fingerprint, 0, ne)
				for j := 0; j < ne && r.Err() == nil; j++ {
					rec.Emitted = append(rec.Emitted, codec.Fingerprint(r.Uint64()))
				}
			}
		}
		recs = append(recs, rec)
	}
	return recs
}

func encodeActionRecords(w *codec.Writer, recs []core.ActionRecord) {
	w.Int(len(recs))
	for i := range recs {
		r := &recs[i]
		w.Int(r.Node)
		w.Uint64(uint64(r.Parent))
		w.Int(r.Action)
		w.Bool(r.Rejected)
		if r.Rejected {
			continue
		}
		w.Uint64(uint64(r.Succ))
		w.Int(len(r.Emitted))
		for _, fp := range r.Emitted {
			w.Uint64(uint64(fp))
		}
	}
}

// decodeActionRecords mirrors decodeRecords' hostile-input hardening for
// the action-record kind.
func decodeActionRecords(r *codec.Reader) []core.ActionRecord {
	n := r.Int()
	if n <= 0 || n > r.Remaining()/actionRecordWireMin+1 {
		if n != 0 {
			r.Int() // provoke a sticky error on short input
		}
		return nil
	}
	recs := make([]core.ActionRecord, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		rec := core.ActionRecord{
			Node:     r.Int(),
			Parent:   codec.Fingerprint(r.Uint64()),
			Action:   r.Int(),
			Rejected: r.Bool(),
		}
		if !rec.Rejected {
			rec.Succ = codec.Fingerprint(r.Uint64())
			ne := r.Int()
			if ne < 0 || ne > r.Remaining()/8+1 {
				return recs
			}
			if ne > 0 {
				rec.Emitted = make([]codec.Fingerprint, 0, ne)
				for j := 0; j < ne && r.Err() == nil; j++ {
					rec.Emitted = append(rec.Emitted, codec.Fingerprint(r.Uint64()))
				}
			}
		}
		recs = append(recs, rec)
	}
	return recs
}

func encodeAnchorReports(w *codec.Writer, reps []core.AnchorReport) {
	w.Int(len(reps))
	for i := range reps {
		r := &reps[i]
		w.Int(r.Node)
		w.Int(r.Seq)
		w.Bool(r.Violated)
		w.Int(r.Combos)
		w.Int(r.MaxDepth)
	}
}

// decodeAnchorReports mirrors decodeRecords' hostile-input hardening for
// the anchor-report kind.
func decodeAnchorReports(r *codec.Reader) []core.AnchorReport {
	n := r.Int()
	if n <= 0 || n > r.Remaining()/anchorReportWireMin+1 {
		if n != 0 {
			r.Int() // provoke a sticky error on short input
		}
		return nil
	}
	reps := make([]core.AnchorReport, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		reps = append(reps, core.AnchorReport{
			Node:     r.Int(),
			Seq:      r.Int(),
			Violated: r.Bool(),
			Combos:   r.Int(),
			MaxDepth: r.Int(),
		})
	}
	return reps
}

// encodeRoundBatch is the RECORDS frame body: round, progress flag, then
// the three record kinds.
func encodeRoundBatch(w *codec.Writer, round int, progress bool, b core.RoundBatch) {
	w.Int(round)
	w.Bool(progress)
	encodeActionRecords(w, b.Acts)
	encodeRecords(w, b.Dels)
	encodeAnchorReports(w, b.Anchors)
}

func decodeRoundBatch(r *codec.Reader) (round int, progress bool, b core.RoundBatch) {
	round = r.Int()
	progress = r.Bool()
	b.Acts = decodeActionRecords(r)
	b.Dels = decodeRecords(r)
	b.Anchors = decodeAnchorReports(r)
	return round, progress, b
}

func encodeDigest(w *codec.Writer, round int, d core.ShardDigest) {
	w.Int(round)
	w.Int(d.NetLen)
	w.Uint64(uint64(d.Net))
	w.Int(d.States)
	w.Uint64(uint64(d.Spaces))
}

func decodeDigest(r *codec.Reader) (int, core.ShardDigest) {
	round := r.Int()
	return round, core.ShardDigest{
		NetLen: r.Int(),
		Net:    codec.Fingerprint(r.Uint64()),
		States: r.Int(),
		Spaces: codec.Fingerprint(r.Uint64()),
	}
}
