package shard

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"
)

// Spawner produces the transport to one worker. Spawn is called once per
// shard before the handshake; closing the returned stream is how the
// coordinator tears the worker down (a worker blocked on the pipe unblocks
// with an error and exits).
type Spawner interface {
	Spawn(idx, count int) (io.ReadWriteCloser, error)
}

// SelfExec spawns workers by re-executing the current binary
// (os.Executable) with Args, wiring the protocol over the child's
// stdin/stdout. The child's stderr is inherited so worker diagnostics reach
// the operator. The binary must recognize Args (e.g. a -shard-worker flag,
// or an env marker in Env) and call RunWorker before doing anything else.
type SelfExec struct {
	// Args are the child's command-line arguments (without the binary name).
	Args []string
	// Env entries are appended to the current environment.
	Env []string
	// Exe overrides the binary to execute (default os.Executable). It
	// exists for tests that need a spawn to fail deterministically.
	Exe string
}

func (s SelfExec) Spawn(idx, count int) (io.ReadWriteCloser, error) {
	exe := s.Exe
	if exe == "" {
		var err error
		exe, err = os.Executable()
		if err != nil {
			return nil, fmt.Errorf("locating own binary: %w", err)
		}
	}
	cmd := exec.Command(exe, s.Args...)
	cmd.Env = append(os.Environ(), s.Env...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		// The stdin pipe was already created; close our end so a failed
		// spawn doesn't leak a descriptor per attempt.
		_ = stdin.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		_ = stdin.Close()
		_ = stdout.Close()
		return nil, fmt.Errorf("starting worker %d: %w", idx, err)
	}
	return &procConn{in: stdin, out: stdout, cmd: cmd}, nil
}

// procConn adapts a child process's pipes to io.ReadWriteCloser. Close
// severs both pipes first — a healthy worker then sees EOF and exits — and
// reaps the child, escalating to Kill if it lingers.
type procConn struct {
	in  io.WriteCloser
	out io.ReadCloser
	cmd *exec.Cmd
}

func (p *procConn) Read(b []byte) (int, error)  { return p.out.Read(b) }
func (p *procConn) Write(b []byte) (int, error) { return p.in.Write(b) }

func (p *procConn) Close() error {
	_ = p.in.Close()
	_ = p.out.Close()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(2 * time.Second):
		_ = p.cmd.Process.Kill()
		return <-done
	}
}

// PipeSpawner runs workers as goroutines over in-memory pipes — same
// protocol, same frame order, no processes. It exists for tests: parity
// runs under the race detector, and DieAfterRound exercises the degradation
// path deterministically.
type PipeSpawner struct {
	// Resolve is the worker-side resolver (required).
	Resolve Resolver
	// DieAfterRound > 0 makes every spawned worker exit instead of
	// answering the round after it (see ServeConn's dieAfterRound).
	DieAfterRound int
}

func (p PipeSpawner) Spawn(idx, count int) (io.ReadWriteCloser, error) {
	coordR, workerW := io.Pipe() // worker → coordinator
	workerR, coordW := io.Pipe() // coordinator → worker
	go func() {
		_ = ServeConn(struct {
			io.Reader
			io.Writer
		}{workerR, workerW}, p.Resolve, p.DieAfterRound)
		// However the serve loop ended, sever the worker side so a
		// coordinator blocked on either pipe unblocks.
		_ = workerW.Close()
		_ = workerR.Close()
	}()
	return &pipeConn{r: coordR, w: coordW}, nil
}

type pipeConn struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func (p *pipeConn) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p *pipeConn) Write(b []byte) (int, error) { return p.w.Write(b) }

func (p *pipeConn) Close() error {
	_ = p.w.Close()
	return p.r.Close()
}
