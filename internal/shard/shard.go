// Package shard runs the checker's exploration across multiple OS
// processes, split by fingerprint range. Config.Shards names the TOTAL
// process count: the coordinator owns shard 0 and runs the full canonical
// engine; each worker process (shards 1..n-1) holds a replica of the run,
// executes the action and delivery steps whose parent-state fingerprint
// falls in its range while it walks, and streams fingerprint-only records
// back over a length-prefixed wire protocol (stdin/stdout of re-exec'd
// children). Workers run each pass's rounds autonomously — several rounds
// ahead of the coordinator under Config.Batch — and exchange replica
// digests only at batch boundaries. The records are hints consumed by the
// coordinator's canonical walk — any subset yields the bit-for-bit
// sequential result — so a dead or diverging worker degrades the run to
// in-process exploration instead of corrupting or aborting it. See
// internal/core/shard.go for the engine-side contract.
package shard

import (
	"context"

	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/obs"
)

// DefaultBatch is the digest cadence used when Config.Batch is unset:
// workers run this many rounds per digest exchange, which bounds how far a
// diverged replica can run before the mismatch is caught while amortizing
// the per-round synchronization.
const DefaultBatch = 8

// Config describes the fleet for one sharded run.
type Config struct {
	// Shards is the total process count, the coordinator included: Shards=2
	// is the coordinator plus one worker. Values <= 1 mean no fleet: Check
	// runs the ordinary in-process checker.
	Shards int
	// Spawner produces worker transports (SelfExec in production,
	// PipeSpawner in tests).
	Spawner Spawner
	// Spec is the workload spec the workers resolve (e.g. "bench:paxos").
	// It must reconstruct the same machine and start state the coordinator
	// was given.
	Spec string
	// Batch is the digest cadence in rounds (<= 0 means DefaultBatch).
	// Every value yields identical results; larger batches trade later
	// divergence detection for fewer synchronization stalls.
	Batch int
	// DisableActionRecords stops workers from capturing action-phase
	// records, restoring the delivery-only record stream. Results are
	// identical either way; this exists for measurement and debugging.
	DisableActionRecords bool
}

// Check runs a sharded exploration: identical results to core.Check for any
// shard count. If the fleet cannot be dialed — spawn failure, handshake
// refusal, resolver error on the worker side — the run falls back to the
// in-process checker after reporting a KindShardDegraded event to the
// observer, mirroring how a mid-run worker failure degrades.
func Check(ctx context.Context, m model.Machine, start model.SystemState,
	opt core.Options, cfg Config) (*core.Result, error) {

	if cfg.Shards <= 1 || cfg.Spawner == nil {
		return core.CheckContext(ctx, m, start, opt)
	}
	l, err := dial(cfg, opt)
	if err != nil {
		if opt.Observer != nil {
			opt.Observer.OnEvent(obs.Event{
				Kind:    obs.KindShardDegraded,
				Checker: "lmc",
				Shard:   -1,
				Shards:  cfg.Shards,
				Detail:  err.Error(),
			})
		}
		return core.CheckContext(ctx, m, start, opt)
	}
	return core.CheckShardedContext(ctx, m, start, opt, l)
}
