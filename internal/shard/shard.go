// Package shard runs the checker's exploration across multiple OS
// processes, split by fingerprint range. A coordinator process runs the
// full canonical engine; each worker process holds a replica of the run and
// speculatively executes the delivery pairs whose parent-state fingerprint
// falls in its range, shipping fingerprint-only records back over a
// length-prefixed wire protocol (stdin/stdout of re-exec'd children). The
// records are hints consumed by the coordinator's canonical walk — any
// subset yields the bit-for-bit sequential result — so a dead or diverging
// worker degrades the run to in-process exploration instead of corrupting
// or aborting it. See internal/core/shard.go for the engine-side contract.
package shard

import (
	"context"

	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/obs"
)

// Config describes the fleet for one sharded run.
type Config struct {
	// Shards is the worker-process count. Values <= 1 mean no fleet: Check
	// runs the ordinary in-process checker.
	Shards int
	// Spawner produces worker transports (SelfExec in production,
	// PipeSpawner in tests).
	Spawner Spawner
	// Spec is the workload spec the workers resolve (e.g. "bench:paxos").
	// It must reconstruct the same machine and start state the coordinator
	// was given.
	Spec string
}

// Check runs a sharded exploration: identical results to core.Check for any
// shard count. If the fleet cannot be dialed — spawn failure, handshake
// refusal, resolver error on the worker side — the run falls back to the
// in-process checker after reporting a KindShardDegraded event to the
// observer, mirroring how a mid-run worker failure degrades.
func Check(ctx context.Context, m model.Machine, start model.SystemState,
	opt core.Options, cfg Config) (*core.Result, error) {

	if cfg.Shards <= 1 || cfg.Spawner == nil {
		return core.CheckContext(ctx, m, start, opt)
	}
	l, err := dial(cfg, opt)
	if err != nil {
		if opt.Observer != nil {
			opt.Observer.OnEvent(obs.Event{
				Kind:    obs.KindShardDegraded,
				Checker: "lmc",
				Shard:   -1,
				Shards:  cfg.Shards,
				Detail:  err.Error(),
			})
		}
		return core.CheckContext(ctx, m, start, opt)
	}
	return core.CheckShardedContext(ctx, m, start, opt, l)
}
