package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"lmc/internal/codec"
	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/protocols/tree"
)

// TestVersionMismatchRefused: a worker handed a HELLO with a different
// protocol version must refuse it with the typed ErrVersionMismatch, after
// sending a best-effort ERROR frame the coordinator can read.
func TestVersionMismatchRefused(t *testing.T) {
	coordR, workerW := io.Pipe()
	workerR, coordW := io.Pipe()
	errCh := make(chan error, 1)
	go func() {
		errCh <- ServeConn(struct {
			io.Reader
			io.Writer
		}{workerR, workerW}, func(spec string) (Workload, error) {
			return Workload{}, errors.New("resolver must not run on a refused handshake")
		}, 0)
	}()

	c := newConn(struct {
		io.Reader
		io.Writer
	}{coordR, coordW})
	h := hello{Version: Version + 1, Spec: "bench:paxos", Idx: 1, Count: 2}
	if err := c.send(ftHello, h.encode); err != nil {
		t.Fatalf("sending skewed HELLO: %v", err)
	}
	ft, r, err := c.recv()
	if err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	if ft != ftError {
		t.Fatalf("expected ERROR frame, got %s", ft)
	}
	if msg := r.String(); !strings.Contains(msg, "version") {
		t.Fatalf("refusal does not name the version: %q", msg)
	}
	if err := <-errCh; !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("serve error is not ErrVersionMismatch: %v", err)
	}
	_ = coordW.Close()
	_ = coordR.Close()
}

// skewSpawner simulates a fleet built from a different release: each
// "worker" reads the HELLO and refuses it the way a version-skewed
// ServeConn would, with an ERROR frame naming the version.
type skewSpawner struct{}

func (skewSpawner) Spawn(idx, count int) (io.ReadWriteCloser, error) {
	coordR, workerW := io.Pipe()
	workerR, coordW := io.Pipe()
	go func() {
		c := newConn(struct {
			io.Reader
			io.Writer
		}{workerR, workerW})
		ft, _, err := c.recv()
		if err == nil && ft == ftHello {
			_ = c.send(ftError, func(w *codec.Writer) {
				w.String(fmt.Sprintf("protocol version %d, worker speaks %d", Version, Version+1))
			})
		}
		_ = workerW.Close()
		_ = workerR.Close()
	}()
	return &pipeConn{r: coordR, w: coordW}, nil
}

// TestVersionSkewDegrades: a coordinator dialing a version-skewed fleet must
// degrade to the in-process checker — reporting KindShardDegraded with the
// worker's refusal — and still produce the sequential result.
func TestVersionSkewDegrades(t *testing.T) {
	m := tree.NewPaperTree()
	start := model.InitialSystem(m)
	opt := core.Options{Invariant: m.CausalityInvariant(), SoundnessShare: -1}
	base := core.Check(m, start, opt)

	var degraded int
	var detail string
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindShardDegraded {
			degraded++
			detail = e.Detail
		}
	})
	res, err := Check(context.Background(), m, start, opt, Config{
		Shards:  2,
		Spawner: skewSpawner{},
		Spec:    "unused",
	})
	if err != nil {
		t.Fatal(err)
	}
	if degraded != 1 {
		t.Fatalf("want exactly one degradation event, got %d", degraded)
	}
	if !strings.Contains(detail, "version") {
		t.Fatalf("degradation detail does not name the version: %q", detail)
	}
	if res.Stats.Transitions != base.Stats.Transitions ||
		res.Stats.SystemStates != base.Stats.SystemStates ||
		res.Complete != base.Complete {
		t.Fatalf("degraded run diverged from sequential:\nseq: %s\ngot: %s",
			base.Stats.String(), res.Stats.String())
	}
}
