package shard

import (
	"bufio"
	"errors"
	"io"

	"lmc/internal/codec"
)

// conn frames codec-encoded messages over a byte stream. Each send is one
// flushed frame (the protocol is lockstep — nothing is ever batched behind a
// flush the peer is waiting on); each recv is one whole frame, split into
// its leading type byte and a reader over the body.
type conn struct {
	br *bufio.Reader
	bw *bufio.Writer
}

func newConn(rw io.ReadWriter) *conn {
	return &conn{br: bufio.NewReader(rw), bw: bufio.NewWriter(rw)}
}

func (c *conn) send(ft frameType, body func(*codec.Writer)) error {
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	w.Byte(byte(ft))
	if body != nil {
		body(w)
	}
	if err := codec.WriteFrame(c.bw, w.Bytes()); err != nil {
		return err
	}
	return c.bw.Flush()
}

func (c *conn) recv() (frameType, *codec.Reader, error) {
	payload, err := codec.ReadFrame(c.br, 0)
	if err != nil {
		return 0, nil, err
	}
	if len(payload) == 0 {
		return 0, nil, errors.New("shard: empty frame")
	}
	return frameType(payload[0]), codec.NewReader(payload[1:]), nil
}
