package shard

import (
	"bufio"
	"errors"
	"io"

	"lmc/internal/codec"
)

// conn frames codec-encoded messages over a byte stream. Sends and receives
// both run through per-conn pooled buffers: a send encodes the body, frames
// it into the persistent write buffer, and hands the transport ONE Write
// call (one syscall on an OS pipe, one pipe round on io.Pipe); a receive
// reads the frame payload into the persistent read buffer. The pooling is
// safe because each side fully decodes a frame before its next recv, and
// every decoded value that outlives the frame (strings, record slices) is
// copied by the decoder.
type conn struct {
	br   *bufio.Reader
	w    io.Writer
	wbuf []byte
	rbuf []byte
}

func newConn(rw io.ReadWriter) *conn {
	return &conn{br: bufio.NewReader(rw), w: rw}
}

func (c *conn) send(ft frameType, body func(*codec.Writer)) error {
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	w.Byte(byte(ft))
	if body != nil {
		body(w)
	}
	c.wbuf = codec.AppendFrame(c.wbuf[:0], w.Bytes())
	_, err := c.w.Write(c.wbuf)
	return err
}

func (c *conn) recv() (frameType, *codec.Reader, error) {
	payload, err := codec.ReadFrameInto(c.br, &c.rbuf, 0)
	if err != nil {
		return 0, nil, err
	}
	if len(payload) == 0 {
		return 0, nil, errors.New("shard: empty frame")
	}
	return frameType(payload[0]), codec.NewReader(payload[1:]), nil
}
