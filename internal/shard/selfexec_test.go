package shard_test

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"lmc/internal/bench"
	"lmc/internal/core"
	"lmc/internal/obs"
	"lmc/internal/shard"
)

// TestSelfExecParity runs the real multi-process path: the test binary
// re-executes itself as shard workers (TestMain's env marker routes the
// children into RunWorker on stdin/stdout), so the wire protocol crosses
// actual process boundaries and OS pipes. The batch sweep proves the digest
// cadence is invisible to results on the real transport too.
func TestSelfExecParity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-spawning test")
	}
	m, start, opt := benchCase(t, "paxos")
	base := core.Check(m, start, opt)

	for _, batch := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			var rounds, degraded int
			var detail string
			runOpt := opt
			runOpt.Observer = obs.FuncObserver(func(e obs.Event) {
				switch e.Kind {
				case obs.KindShardRound:
					rounds++
				case obs.KindShardDegraded:
					degraded++
					detail = e.Detail
				}
			})
			res, err := shard.Check(context.Background(), m, start, runOpt, shard.Config{
				Shards:  2,
				Spawner: shard.SelfExec{Env: []string{"LMC_SHARD_WORKER=1"}},
				Spec:    bench.ShardSpec("paxos"),
				Batch:   batch,
			})
			if err != nil {
				t.Fatal(err)
			}
			if degraded != 0 {
				t.Fatalf("degraded %d times (last: %s)", degraded, detail)
			}
			if rounds == 0 {
				t.Fatal("no shard record exchanges observed")
			}
			assertSameResult(t, 2, base, res)
		})
	}
}

// TestSelfExecKillWorker exercises degradation across real processes: the
// child workers exit after round 2 (env hook), the coordinator sees EOF
// while fetching records, and the run finishes in-process bit-for-bit.
func TestSelfExecKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-spawning test")
	}
	m, start, opt := benchCase(t, "paxos")
	base := core.Check(m, start, opt)

	var degraded int
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindShardDegraded {
			degraded++
		}
	})
	res, err := shard.Check(context.Background(), m, start, opt, shard.Config{
		Shards: 2,
		Spawner: shard.SelfExec{Env: []string{
			"LMC_SHARD_WORKER=1",
			"LMC_SHARD_DIE_AFTER_ROUND=2",
		}},
		Spec: bench.ShardSpec("paxos"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if degraded == 0 {
		t.Fatal("worker death did not surface as a degradation event")
	}
	if !res.Complete {
		t.Fatal("degraded run lost completeness")
	}
	assertSameResult(t, 2, base, res)
}

// openFDCount counts this process's open file descriptors via /proc.
func openFDCount(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatalf("reading /proc/self/fd: %v", err)
	}
	return len(ents)
}

// TestSelfExecSpawnFailureLeaksNoFDs: a spawn that fails after creating its
// pipes must close them. Each SelfExec.Spawn creates two pipe pairs before
// exec; without the error-path closes, every failed spawn would leak
// descriptors, and a coordinator retrying across runs would exhaust the
// process limit.
func TestSelfExecSpawnFailureLeaksNoFDs(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("relies on /proc/self/fd")
	}
	s := shard.SelfExec{Exe: "/nonexistent/lmc-worker-binary"}
	// One warm-up failure so lazily-created runtime descriptors settle.
	if _, err := s.Spawn(1, 2); err == nil {
		t.Fatal("spawn of a nonexistent binary succeeded")
	}
	before := openFDCount(t)
	for i := 0; i < 20; i++ {
		if _, err := s.Spawn(1, 2); err == nil {
			t.Fatal("spawn of a nonexistent binary succeeded")
		}
	}
	if after := openFDCount(t); after > before {
		t.Fatalf("failed spawns leaked descriptors: %d before, %d after", before, after)
	}
}
