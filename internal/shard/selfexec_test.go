package shard_test

import (
	"context"
	"testing"

	"lmc/internal/bench"
	"lmc/internal/core"
	"lmc/internal/obs"
	"lmc/internal/shard"
)

// TestSelfExecParity runs the real multi-process path: the test binary
// re-executes itself as shard workers (TestMain's env marker routes the
// children into RunWorker on stdin/stdout), so the wire protocol crosses
// actual process boundaries and OS pipes.
func TestSelfExecParity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-spawning test")
	}
	m, start, opt := benchCase(t, "paxos")
	base := core.Check(m, start, opt)

	var rounds, degraded int
	var detail string
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		switch e.Kind {
		case obs.KindShardRound:
			rounds++
		case obs.KindShardDegraded:
			degraded++
			detail = e.Detail
		}
	})
	res, err := shard.Check(context.Background(), m, start, opt, shard.Config{
		Shards:  2,
		Spawner: shard.SelfExec{Env: []string{"LMC_SHARD_WORKER=1"}},
		Spec:    bench.ShardSpec("paxos"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if degraded != 0 {
		t.Fatalf("degraded %d times (last: %s)", degraded, detail)
	}
	if rounds == 0 {
		t.Fatal("no shard record exchanges observed")
	}
	assertSameResult(t, 2, base, res)
}

// TestSelfExecKillWorker exercises degradation across real processes: the
// child workers exit after round 2 (env hook), the coordinator sees EOF
// while collecting records, and the run finishes in-process bit-for-bit.
func TestSelfExecKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping process-spawning test")
	}
	m, start, opt := benchCase(t, "paxos")
	base := core.Check(m, start, opt)

	var degraded int
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindShardDegraded {
			degraded++
		}
	})
	res, err := shard.Check(context.Background(), m, start, opt, shard.Config{
		Shards: 2,
		Spawner: shard.SelfExec{Env: []string{
			"LMC_SHARD_WORKER=1",
			"LMC_SHARD_DIE_AFTER_ROUND=2",
		}},
		Spec: bench.ShardSpec("paxos"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if degraded == 0 {
		t.Fatal("worker death did not surface as a degradation event")
	}
	if !res.Complete {
		t.Fatal("degraded run lost completeness")
	}
	assertSameResult(t, 2, base, res)
}
