package shard

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"lmc/internal/codec"
	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/spec"
)

// Workload is what a worker needs to rebuild the coordinator's run: the
// machine, the start state, any seeded in-flight messages, and the
// system-wide invariant. The invariant travels (as resolver-reconstructed
// code, not over the wire) because invariant sharding hands each worker the
// combination sweeps of the anchors it owns; a nil Invariant just means the
// worker explores without sweeping and the coordinator checks everything
// inline. Reductions and budgets deliberately do not travel — workers run
// the stripped replica core.NewShardWorker builds.
type Workload struct {
	Machine         model.Machine
	Start           model.SystemState
	InitialMessages []model.Message
	Invariant       spec.Invariant
}

// Resolver turns the spec string from the coordinator's HELLO into a
// workload. Both sides of a deployment agree on a spec namespace — e.g.
// "bench:<name>" resolved by internal/bench — and the resolver is the only
// workload-construction code a worker binary needs.
type Resolver func(spec string) (Workload, error)

// dieAfterRoundEnv lets tests sever a re-exec'd worker mid-run: the worker
// exits instead of computing the round after the configured one, which the
// coordinator sees as an EOF while fetching records.
const dieAfterRoundEnv = "LMC_SHARD_DIE_AFTER_ROUND"

// RunWorker serves the shard-worker protocol on stdin/stdout. This is the
// body of a binary's -shard-worker mode; it returns when the coordinator
// finishes (nil) or on a transport/protocol error. Nothing else may write
// to stdout while it runs.
func RunWorker(resolve Resolver) error {
	die := 0
	if v := os.Getenv(dieAfterRoundEnv); v != "" {
		die, _ = strconv.Atoi(v)
	}
	return ServeConn(struct {
		io.Reader
		io.Writer
	}{os.Stdin, os.Stdout}, resolve, die)
}

// ServeConn runs the worker side of the protocol over rw: HELLO→READY
// handshake, then one autonomous round stream per PASS. A DONE frame, a
// clean EOF, or a closed pipe at any receive point ends the session with
// nil; so does ANY send failure after the handshake — the only peer is the
// coordinator, and a coordinator that stopped reading has stopped or
// degraded, which must not look like a worker failure. dieAfterRound > 0
// makes the worker exit instead of computing that round of each pass (test
// hook for the degradation path).
func ServeConn(rw io.ReadWriter, resolve Resolver, dieAfterRound int) error {
	c := newConn(rw)

	ft, r, err := c.recv()
	if err != nil {
		return fmt.Errorf("shard worker: reading HELLO: %w", err)
	}
	if ft != ftHello {
		return fmt.Errorf("shard worker: expected HELLO, got %s", ft)
	}
	h := decodeHello(r)
	if r.Err() != nil {
		return fmt.Errorf("shard worker: bad HELLO: %w", r.Err())
	}
	if h.Version != Version {
		return refuseErr(c,
			fmt.Sprintf("protocol version %d, worker speaks %d", h.Version, Version),
			ErrVersionMismatch)
	}
	if h.Count < 2 || h.Idx < 1 || h.Idx >= h.Count {
		return refuse(c, fmt.Sprintf("bad shard coordinates %d/%d", h.Idx, h.Count))
	}
	batch := h.Batch
	if batch < 1 {
		batch = 1
	}
	wl, err := resolve(h.Spec)
	if err != nil {
		return refuse(c, fmt.Sprintf("resolving workload %q: %v", h.Spec, err))
	}
	w := core.NewShardWorker(wl.Machine, wl.Start, core.Options{
		DupLimit:         h.DupLimit,
		LocalBound:       h.LocalBound,
		MaxPathDepth:     h.MaxPathDepth,
		MaxPredecessors:  h.MaxPredecessors,
		RoundDeliveryCap: h.RoundDeliveryCap,
		MaxTransitions:   h.MaxTransitions,
		MaxSystemDepth:   h.MaxSystemDepth,
		InitialMessages:  wl.InitialMessages,
		Invariant:        wl.Invariant,
	}, h.Idx, h.Count, h.ShardInvariants)
	if !h.ActionRecords {
		w.DisableActionRecords()
	}
	invOK := h.ShardInvariants && wl.Invariant != nil
	if err := c.send(ftReady, func(cw *codec.Writer) { cw.Bool(invOK) }); err != nil {
		return fmt.Errorf("shard worker: sending READY: %w", err)
	}

	for {
		ft, r, err := c.recv()
		if err != nil {
			if cleanShutdown(err) {
				return nil
			}
			return fmt.Errorf("shard worker: %w", err)
		}
		switch ft {
		case ftDone:
			return nil
		case ftPass:
			r.Int() // pass number, informational
			bound := r.Int()
			if r.Err() != nil {
				return fmt.Errorf("shard worker: bad PASS: %w", r.Err())
			}
			w.BeginPass(bound)
			// Stream the pass's rounds on our own clock; the coordinator
			// reads RECORDS(r) at its round r and DIGEST(r) at each batch
			// boundary, in exactly this order.
			for round := 1; ; round++ {
				if dieAfterRound > 0 && round > dieAfterRound {
					return fmt.Errorf("shard worker: dying before round %d (test hook)", round)
				}
				rb, progress := w.RunRound()
				err := c.send(ftRecords, func(cw *codec.Writer) {
					encodeRoundBatch(cw, round, progress, rb)
				})
				if err != nil {
					return nil // coordinator gone: clean shutdown
				}
				if w.Stopped() {
					// The transition budget ran out mid-round; the
					// coordinator hits the same budget at the same
					// transition and stops without a digest exchange.
					break
				}
				if round%batch == 0 || !progress {
					digest := w.Digest()
					err := c.send(ftDigest, func(cw *codec.Writer) {
						encodeDigest(cw, round, digest)
					})
					if err != nil {
						return nil // coordinator gone: clean shutdown
					}
				}
				if !progress {
					break // pass fixpoint: park for the next PASS or DONE
				}
			}
		default:
			return fmt.Errorf("shard worker: unexpected %s", ft)
		}
	}
}

// refuse reports a worker-side failure to the coordinator (best-effort) and
// returns it as the serve error.
func refuse(c *conn, msg string) error {
	_ = c.send(ftError, func(w *codec.Writer) { w.String(msg) })
	return errors.New("shard worker: " + msg)
}

// refuseErr is refuse with a typed cause, so callers can errors.Is the
// serve error (used for ErrVersionMismatch).
func refuseErr(c *conn, msg string, cause error) error {
	_ = c.send(ftError, func(w *codec.Writer) { w.String(msg) })
	return fmt.Errorf("shard worker: %s: %w", msg, cause)
}

// cleanShutdown reports whether a receive error means the coordinator closed
// the transport on purpose: EOF on a frame boundary, or the closed half of
// an in-process pipe.
func cleanShutdown(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe)
}
