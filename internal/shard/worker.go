package shard

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"

	"lmc/internal/codec"
	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/netstate"
)

// Workload is what a worker needs to rebuild the coordinator's run: the
// machine, the start state, and any seeded in-flight messages. Invariants,
// reductions, and budgets deliberately do not travel — workers explore
// without checking (core.NewShardWorker strips them), so the resolver only
// reconstructs the explored system itself.
type Workload struct {
	Machine         model.Machine
	Start           model.SystemState
	InitialMessages []model.Message
}

// Resolver turns the spec string from the coordinator's HELLO into a
// workload. Both sides of a deployment agree on a spec namespace — e.g.
// "bench:<name>" resolved by internal/bench — and the resolver is the only
// workload-construction code a worker binary needs.
type Resolver func(spec string) (Workload, error)

// dieAfterRoundEnv lets tests sever a re-exec'd worker mid-run: the worker
// exits instead of answering the ROUND that starts the configured round,
// which the coordinator sees as an EOF while collecting records.
const dieAfterRoundEnv = "LMC_SHARD_DIE_AFTER_ROUND"

// RunWorker serves the shard-worker protocol on stdin/stdout. This is the
// body of a binary's -shard-worker mode; it returns when the coordinator
// finishes (nil) or on a transport/protocol error. Nothing else may write
// to stdout while it runs.
func RunWorker(resolve Resolver) error {
	die := 0
	if v := os.Getenv(dieAfterRoundEnv); v != "" {
		die, _ = strconv.Atoi(v)
	}
	return ServeConn(struct {
		io.Reader
		io.Writer
	}{os.Stdin, os.Stdout}, resolve, die)
}

// ServeConn runs the worker side of the protocol over rw: HELLO→READY
// handshake, then the lockstep pass/round loop. A DONE frame, a clean EOF,
// or a closed pipe at any receive point ends the session with nil — the
// coordinator closes the transport without ceremony when it degrades or
// stops early, and that must not look like a worker failure. dieAfterRound
// > 0 makes the worker exit instead of answering that round (test hook for
// the degradation path).
func ServeConn(rw io.ReadWriter, resolve Resolver, dieAfterRound int) error {
	c := newConn(rw)

	ft, r, err := c.recv()
	if err != nil {
		return fmt.Errorf("shard worker: reading HELLO: %w", err)
	}
	if ft != ftHello {
		return fmt.Errorf("shard worker: expected HELLO, got %s", ft)
	}
	h := decodeHello(r)
	if r.Err() != nil {
		return fmt.Errorf("shard worker: bad HELLO: %w", r.Err())
	}
	if h.Version != Version {
		return refuse(c, fmt.Sprintf("protocol version %d, worker speaks %d", h.Version, Version))
	}
	if h.Count < 2 || h.Idx < 0 || h.Idx >= h.Count {
		return refuse(c, fmt.Sprintf("bad shard coordinates %d/%d", h.Idx, h.Count))
	}
	wl, err := resolve(h.Spec)
	if err != nil {
		return refuse(c, fmt.Sprintf("resolving workload %q: %v", h.Spec, err))
	}
	w := core.NewShardWorker(wl.Machine, wl.Start, core.Options{
		DupLimit:         h.DupLimit,
		LocalBound:       h.LocalBound,
		MaxPathDepth:     h.MaxPathDepth,
		MaxPredecessors:  h.MaxPredecessors,
		RoundDeliveryCap: h.RoundDeliveryCap,
		InitialMessages:  wl.InitialMessages,
	}, h.Idx, h.Count)
	if err := c.send(ftReady, nil); err != nil {
		return fmt.Errorf("shard worker: sending READY: %w", err)
	}

	for {
		ft, r, err := c.recv()
		if err != nil {
			if cleanShutdown(err) {
				return nil
			}
			return fmt.Errorf("shard worker: %w", err)
		}
		switch ft {
		case ftDone:
			return nil
		case ftPass:
			r.Int() // pass number, informational
			bound := r.Int()
			if r.Err() != nil {
				return fmt.Errorf("shard worker: bad PASS: %w", r.Err())
			}
			w.BeginPass(bound)
		case ftRound:
			round := r.Int()
			if r.Err() != nil {
				return fmt.Errorf("shard worker: bad ROUND: %w", r.Err())
			}
			if dieAfterRound > 0 && round > dieAfterRound {
				return fmt.Errorf("shard worker: dying before round %d (test hook)", round)
			}
			recs := w.RunRound()
			err := c.send(ftRecords, func(cw *codec.Writer) {
				cw.Int(round)
				encodeRecords(cw, recs)
			})
			if err != nil {
				return fmt.Errorf("shard worker: sending RECORDS: %w", err)
			}
			// Lockstep: the only frames that may follow our RECORDS are the
			// APPLY for this round or a DONE (the coordinator stopped or
			// degraded mid-round).
			ft, r, err := c.recv()
			if err != nil {
				if cleanShutdown(err) {
					return nil
				}
				return fmt.Errorf("shard worker: awaiting APPLY: %w", err)
			}
			if ft == ftDone {
				return nil
			}
			if ft != ftApply {
				return fmt.Errorf("shard worker: expected APPLY, got %s", ft)
			}
			gotRound := r.Int()
			merged := decodeRecords(r)
			delta := netstate.DecodeEpochDelta(r)
			if r.Err() != nil {
				return fmt.Errorf("shard worker: bad APPLY: %w", r.Err())
			}
			if gotRound != round {
				return fmt.Errorf("shard worker: APPLY for round %d during round %d", gotRound, round)
			}
			digest, err := w.Apply(merged, delta)
			if err != nil {
				return refuse(c, fmt.Sprintf("round %d: %v", round, err))
			}
			err = c.send(ftDigest, func(cw *codec.Writer) {
				encodeDigest(cw, round, digest)
			})
			if err != nil {
				return fmt.Errorf("shard worker: sending DIGEST: %w", err)
			}
		default:
			return fmt.Errorf("shard worker: unexpected %s", ft)
		}
	}
}

// refuse reports a worker-side failure to the coordinator (best-effort) and
// returns it as the serve error.
func refuse(c *conn, msg string) error {
	_ = c.send(ftError, func(w *codec.Writer) { w.String(msg) })
	return errors.New("shard worker: " + msg)
}

// cleanShutdown reports whether a receive error means the coordinator closed
// the transport on purpose: EOF on a frame boundary, or the closed half of
// an in-process pipe.
func cleanShutdown(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe)
}
