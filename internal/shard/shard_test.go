package shard_test

import (
	"context"
	"fmt"
	"io"
	"os"
	"testing"

	"lmc/internal/bench"
	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/protocols/tree"
	"lmc/internal/shard"
)

// TestMain doubles as the worker entry point for the SelfExec tests: the
// re-exec'd test binary sees the env marker and serves the shard protocol
// on stdin/stdout instead of running the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("LMC_SHARD_WORKER") == "1" {
		if err := shard.RunWorker(testResolver()); err != nil {
			fmt.Fprintln(os.Stderr, "shard worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testResolver resolves the bench registry plus the one test-only spec with
// seeded in-flight messages.
func testResolver() shard.Resolver {
	br := bench.ShardResolver()
	return func(spec string) (shard.Workload, error) {
		if spec == "test:tree-inflight" {
			m := tree.NewPaperTree()
			return shard.Workload{
				Machine: m,
				Start:   model.InitialSystem(m),
				InitialMessages: []model.Message{
					tree.Forward{From: 0, To: 1},
					tree.Forward{From: 0, To: 2},
				},
			}, nil
		}
		return br(spec)
	}
}

// benchCase rebuilds a registry workload on the coordinator side, exactly
// as the worker resolver will: same constructor path, fresh machine
// instance — parity across separate instances is part of what the test
// proves.
func benchCase(t *testing.T, name string) (model.Machine, model.SystemState, core.Options) {
	t.Helper()
	w, err := bench.Lookup(name)
	if err != nil {
		t.Fatalf("lookup %q: %v", name, err)
	}
	start, err := w.StartState()
	if err != nil {
		t.Fatalf("start state %q: %v", name, err)
	}
	return w.Machine, start, core.Options{
		Invariant:       w.Invariant,
		LocalInvariants: w.Locals,
		SoundnessShare:  -1,
	}
}

// shardedRun checks a workload through a PipeSpawner fleet and asserts the
// sharded path actually engaged: no degradation, and at least one
// per-shard record exchange observed. cfg.Spawner is filled in here.
func shardedRun(t *testing.T, m model.Machine, start model.SystemState,
	opt core.Options, cfg shard.Config) *core.Result {
	t.Helper()
	var rounds, degraded int
	var lastDegrade string
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		switch e.Kind {
		case obs.KindShardRound:
			rounds++
		case obs.KindShardDegraded:
			degraded++
			lastDegrade = e.Detail
		}
	})
	cfg.Spawner = shard.PipeSpawner{Resolve: testResolver()}
	res, err := shard.Check(context.Background(), m, start, opt, cfg)
	if err != nil {
		t.Fatalf("shards=%d: %v", cfg.Shards, err)
	}
	if cfg.Shards > 1 {
		if degraded != 0 {
			t.Fatalf("shards=%d: degraded %d times (last: %s)", cfg.Shards, degraded, lastDegrade)
		}
		if rounds == 0 {
			t.Fatalf("shards=%d: no shard record exchanges observed", cfg.Shards)
		}
	}
	return res
}

// TestShardsParity is the tentpole gate: for every protocol family — the
// six bench protocols plus the actorcheck 2PC adapter — a sharded run is
// bit-for-bit identical to the sequential checker, for generative and
// reduction-backed configurations, with and without the fingerprint-layer
// reductions, and under a transition cap (which every replica hits at the
// same canonical transition). shards counts total processes: 1 covers the
// no-fleet path, 2 is coordinator + one worker, 4 is coordinator + three.
func TestShardsParity(t *testing.T) {
	type tcase struct {
		name   string
		spec   string
		bench  string // registry name; "" means the spec is test-local
		shards []int
		mutate func(*core.Options)
	}
	cases := []tcase{
		{name: "paxos-gen", bench: "paxos", shards: []int{1, 2, 4}},
		{name: "paxos-opt", bench: "paxos", shards: []int{2, 4},
			mutate: func(o *core.Options) {
				w, _ := bench.Lookup("paxos")
				o.Reduction = w.Reduction
			}},
		{name: "paxos-gen-reduced", bench: "paxos", shards: []int{2},
			mutate: func(o *core.Options) {
				o.Reduce = core.Reductions{Symmetry: true, PartialOrder: true}
			}},
		{name: "paxos-gen-capped", bench: "paxos", shards: []int{2},
			mutate: func(o *core.Options) { o.MaxTransitions = 500 }},
		{name: "onepaxos-capped", bench: "1paxos", shards: []int{2},
			// The full single-decree space is far too large for a unit
			// test; a transition cap keeps it bounded while still proving
			// parity for the protocol (the cap cuts in canonical charge
			// order, which the sharded walk must reproduce exactly).
			mutate: func(o *core.Options) { o.MaxTransitions = 1000 }},
		{name: "tree-inflight", spec: "test:tree-inflight", shards: []int{2}},
		{name: "chain", bench: "chain", shards: []int{2}},
		{name: "randtree", bench: "randtree", shards: []int{2}},
		{name: "twophase-bug", bench: "twophase-bug", shards: []int{2, 4}},
		{name: "twophase-bug-reduced", bench: "twophase-bug", shards: []int{2},
			mutate: func(o *core.Options) {
				o.Reduce = core.Reductions{Symmetry: true, PartialOrder: true}
			}},
		{name: "actor-2pc-bug", bench: "actor-2pc-bug", shards: []int{2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var m model.Machine
			var start model.SystemState
			var opt core.Options
			spec := tc.spec
			if tc.bench != "" {
				m, start, opt = benchCase(t, tc.bench)
				spec = bench.ShardSpec(tc.bench)
			} else {
				wl, err := testResolver()(tc.spec)
				if err != nil {
					t.Fatal(err)
				}
				m, start = wl.Machine, wl.Start
				treeM := m.(*tree.Machine)
				opt = core.Options{
					Invariant:       treeM.CausalityInvariant(),
					InitialMessages: wl.InitialMessages,
					SoundnessShare:  -1,
				}
			}
			if tc.mutate != nil {
				tc.mutate(&opt)
			}
			base := core.Check(m, start, opt)
			for _, shards := range tc.shards {
				got := shardedRun(t, m, start, opt, shard.Config{Shards: shards, Spec: spec})
				assertSameResult(t, shards, base, got)
			}
		})
	}
}

// TestShardsBatchAndActionRecordParity sweeps the two protocol knobs that
// must never change results: the digest batch window and action-record
// capture. Every combination must reproduce the sequential run bit-for-bit
// — records are hints, and digests only detect divergence, so neither knob
// may influence the walk.
func TestShardsBatchAndActionRecordParity(t *testing.T) {
	m, start, opt := benchCase(t, "paxos")
	base := core.Check(m, start, opt)
	for _, batch := range []int{1, 2, 8} {
		for _, noActs := range []bool{false, true} {
			t.Run(fmt.Sprintf("batch=%d,acts=%v", batch, !noActs), func(t *testing.T) {
				got := shardedRun(t, m, start, opt, shard.Config{
					Shards:               2,
					Spec:                 bench.ShardSpec("paxos"),
					Batch:                batch,
					DisableActionRecords: noActs,
				})
				assertSameResult(t, 2, base, got)
			})
		}
	}
}

// TestKillWorkerDegrades: a worker dying mid-run must degrade the run to
// in-process exploration — observed via the typed event — while the result
// stays bit-for-bit identical to sequential, including Complete.
func TestKillWorkerDegrades(t *testing.T) {
	m, start, opt := benchCase(t, "paxos")
	base := core.Check(m, start, opt)

	var degraded int
	var detail string
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindShardDegraded {
			degraded++
			detail = e.Detail
		}
	})
	res, err := shard.Check(context.Background(), m, start, opt, shard.Config{
		Shards:  2,
		Spawner: shard.PipeSpawner{Resolve: testResolver(), DieAfterRound: 2},
		Spec:    bench.ShardSpec("paxos"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if degraded == 0 {
		t.Fatal("worker death did not surface as a degradation event")
	}
	t.Logf("degraded: %s", detail)
	if !res.Complete {
		t.Fatal("degraded run lost completeness despite finishing in-process")
	}
	assertSameResult(t, 2, base, res)
}

// TestDialFailureFallsBack: a spawner that cannot produce workers must fall
// back to the in-process checker (with the degradation event), not fail.
func TestDialFailureFallsBack(t *testing.T) {
	m, start, opt := benchCase(t, "paxos")
	base := core.Check(m, start, opt)

	var degraded int
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindShardDegraded {
			degraded++
		}
	})
	res, err := shard.Check(context.Background(), m, start, opt, shard.Config{
		Shards:  2,
		Spawner: failSpawner{},
		Spec:    bench.ShardSpec("paxos"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if degraded != 1 {
		t.Fatalf("want exactly one degradation event, got %d", degraded)
	}
	assertSameResult(t, 2, base, res)
}

type failSpawner struct{}

func (failSpawner) Spawn(idx, count int) (io.ReadWriteCloser, error) {
	return nil, fmt.Errorf("no workers here")
}

// TestBadSpecDegrades: a worker that cannot resolve the spec refuses the
// handshake with a typed ERROR frame; the coordinator falls back.
func TestBadSpecDegrades(t *testing.T) {
	m, start, opt := benchCase(t, "paxos")
	var degraded int
	var detail string
	opt.Observer = obs.FuncObserver(func(e obs.Event) {
		if e.Kind == obs.KindShardDegraded {
			degraded++
			detail = e.Detail
		}
	})
	res, err := shard.Check(context.Background(), m, start, opt, shard.Config{
		Shards:  2,
		Spawner: shard.PipeSpawner{Resolve: testResolver()},
		Spec:    "bench:no-such-workload",
	})
	if err != nil {
		t.Fatal(err)
	}
	if degraded != 1 {
		t.Fatalf("want exactly one degradation event, got %d (detail %q)", degraded, detail)
	}
	if !res.Complete {
		t.Fatal("fallback run incomplete")
	}
}

// assertSameResult mirrors the core worker-parity harness: every
// deterministic counter and the confirmed bug list must match exactly.
func assertSameResult(t *testing.T, shards int, base, got *core.Result) {
	t.Helper()
	b, g := base.Stats, got.Stats
	if b.SystemStates != g.SystemStates ||
		b.InvariantChecks != g.InvariantChecks ||
		b.NodeStates != g.NodeStates ||
		b.Transitions != g.Transitions ||
		b.PreliminaryViolations != g.PreliminaryViolations ||
		b.SoundnessCalls != g.SoundnessCalls ||
		b.SequencesChecked != g.SequencesChecked ||
		b.ConfirmedBugs != g.ConfirmedBugs ||
		b.DuplicatesDropped != g.DuplicatesDropped ||
		b.SymmetrySkips != g.SymmetrySkips ||
		b.OrbitChecks != g.OrbitChecks ||
		b.PORPathsDeduped != g.PORPathsDeduped ||
		b.PORDetached != g.PORDetached {
		t.Fatalf("shards=%d diverged from sequential:\nseq: %s\ngot: %s",
			shards, b.String(), g.String())
	}
	if base.Complete != got.Complete {
		t.Fatalf("shards=%d completeness diverged: seq=%v got=%v",
			shards, base.Complete, got.Complete)
	}
	if len(base.Bugs) != len(got.Bugs) {
		t.Fatalf("shards=%d bug count diverged: seq=%d got=%d",
			shards, len(base.Bugs), len(got.Bugs))
	}
	for i := range base.Bugs {
		bb, gb := base.Bugs[i], got.Bugs[i]
		if bb.Violation.Invariant != gb.Violation.Invariant ||
			bb.Violation.Detail != gb.Violation.Detail {
			t.Fatalf("shards=%d bug %d violation diverged", shards, i)
		}
		if bb.Depth != gb.Depth {
			t.Fatalf("shards=%d bug %d depth diverged: seq=%d got=%d",
				shards, i, bb.Depth, gb.Depth)
		}
		if bb.System.Fingerprint() != gb.System.Fingerprint() {
			t.Fatalf("shards=%d bug %d system state diverged", shards, i)
		}
		if len(bb.Schedule) != len(gb.Schedule) {
			t.Fatalf("shards=%d bug %d schedule length diverged: seq=%d got=%d",
				shards, i, len(bb.Schedule), len(gb.Schedule))
		}
	}
}
