package shard

import (
	"fmt"
	"io"

	"lmc/internal/codec"
	"lmc/internal/core"
)

// remoteWorker is the coordinator's handle on one worker. parked tracks
// whether the worker is known to be blocked in its top-level receive (just
// handshaken, or parked at a pass fixpoint): only a parked worker can be
// handed a DONE frame without deadlocking an unbuffered transport —
// everyone else is torn down by closing the stream, which fails their
// blocked read or write (workers treat both as a clean shutdown).
type remoteWorker struct {
	conn   *conn
	rwc    io.ReadWriteCloser
	parked bool
}

// link implements core.ShardLink over the wire protocol. All methods run on
// the checker's sequential merge goroutine; any error returned makes the
// checker degrade (drop the link, Finish, continue in-process), so methods
// never retry. Frame order is deterministic on both sides — per pass, each
// worker writes RECORDS(r) for every round r and DIGEST(r) exactly at batch
// boundaries and the fixpoint, and the coordinator reads in the same order —
// so replica divergence surfaces as a digest or frame-type mismatch, never
// as a deadlock.
type link struct {
	ws    []*remoteWorker
	n     int // total process count, coordinator included
	batch int
}

// dial spawns and handshakes the fleet: workers take shard indices
// 1..cfg.Shards-1, the coordinator keeps shard 0. HELLOs go out to every
// worker before any READY is collected, so workers build their replicas
// concurrently. On any failure the already-spawned workers are torn down
// and the error names the shard.
func dial(cfg Config, opt core.Options) (*link, error) {
	batch := cfg.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	l := &link{n: cfg.Shards, batch: batch}
	for i := 1; i < cfg.Shards; i++ {
		rwc, err := cfg.Spawner.Spawn(i, cfg.Shards)
		if err != nil {
			l.Finish()
			return nil, fmt.Errorf("shard %d: spawn: %w", i, err)
		}
		l.ws = append(l.ws, &remoteWorker{conn: newConn(rwc), rwc: rwc})
	}
	h := hello{
		Version:          Version,
		Spec:             cfg.Spec,
		Count:            cfg.Shards,
		DupLimit:         opt.DupLimit,
		LocalBound:       opt.LocalBound,
		MaxPathDepth:     opt.MaxPathDepth,
		MaxPredecessors:  opt.MaxPredecessors,
		RoundDeliveryCap: opt.RoundDeliveryCap,
		MaxTransitions:   opt.MaxTransitions,
		MaxSystemDepth:   opt.MaxSystemDepth,
		Batch:            batch,
		ActionRecords:    !cfg.DisableActionRecords,
		ShardInvariants:  core.ShardInvariantsEligible(opt),
	}
	for wi, w := range l.ws {
		hi := h
		hi.Idx = wi + 1
		if err := w.conn.send(ftHello, hi.encode); err != nil {
			l.Finish()
			return nil, fmt.Errorf("shard %d: sending HELLO: %w", wi+1, err)
		}
	}
	for wi, w := range l.ws {
		ft, r, err := w.conn.recv()
		if err != nil {
			l.Finish()
			return nil, fmt.Errorf("shard %d: handshake: %w", wi+1, err)
		}
		switch ft {
		case ftReady:
			r.Bool() // invariant-sharding ack, informational
			if r.Err() != nil {
				l.Finish()
				return nil, fmt.Errorf("shard %d: bad READY: %w", wi+1, r.Err())
			}
			w.parked = true
		case ftError:
			msg := r.String()
			l.Finish()
			return nil, fmt.Errorf("shard %d: %s", wi+1, msg)
		default:
			l.Finish()
			return nil, fmt.Errorf("shard %d: expected READY, got %s", wi+1, ft)
		}
	}
	return l, nil
}

func (l *link) Shards() int { return l.n }
func (l *link) Batch() int  { return l.batch }

// BeginPass releases every worker into autonomous round streaming: after
// this frame, the next coordinator I/O with each worker is FetchRound(1).
func (l *link) BeginPass(pass, bound int) error {
	for wi, w := range l.ws {
		w.parked = false
		err := w.conn.send(ftPass, func(cw *codec.Writer) {
			cw.Int(pass)
			cw.Int(bound)
		})
		if err != nil {
			return fmt.Errorf("shard %d: sending PASS: %w", wi+1, err)
		}
	}
	return nil
}

// FetchRound reads each worker's RECORDS frame for round. The workers
// computed the round on their own clock — often while the coordinator was
// still walking the previous one — so this is usually a buffered read, not
// a wait. Batches decoded before an error are returned with it, and the
// checker consumes them: records are hints, so a partial fetch loses
// speedup, not correctness.
func (l *link) FetchRound(round int) ([]core.RoundBatch, error) {
	out := make([]core.RoundBatch, 0, len(l.ws))
	for wi, w := range l.ws {
		ft, r, err := w.conn.recv()
		if err != nil {
			return out, fmt.Errorf("shard %d: fetching round %d: %w", wi+1, round, err)
		}
		if ft == ftError {
			return out, fmt.Errorf("shard %d: %s", wi+1, r.String())
		}
		if ft != ftRecords {
			return out, fmt.Errorf("shard %d: expected RECORDS, got %s", wi+1, ft)
		}
		gotRound, _, batch := decodeRoundBatch(r)
		if r.Err() != nil {
			return out, fmt.Errorf("shard %d: bad RECORDS: %w", wi+1, r.Err())
		}
		if gotRound != round {
			return out, fmt.Errorf("shard %d: RECORDS for round %d, want %d", wi+1, gotRound, round)
		}
		out = append(out, batch)
	}
	return out, nil
}

// EndBatch reads and checks each worker's DIGEST for the batch ending at
// round. The checker calls it only at batch boundaries and at the pass
// fixpoint (final), matching the workers' own send cadence. final means the
// workers park after this digest, so they become DONE-deliverable.
func (l *link) EndBatch(round int, d core.ShardDigest, final bool) error {
	for wi, w := range l.ws {
		ft, r, err := w.conn.recv()
		if err != nil {
			return fmt.Errorf("shard %d: collecting digest: %w", wi+1, err)
		}
		if ft == ftError {
			return fmt.Errorf("shard %d: %s", wi+1, r.String())
		}
		if ft != ftDigest {
			return fmt.Errorf("shard %d: expected DIGEST, got %s", wi+1, ft)
		}
		gotRound, wd := decodeDigest(r)
		if r.Err() != nil {
			return fmt.Errorf("shard %d: bad DIGEST: %w", wi+1, r.Err())
		}
		if gotRound != round {
			return fmt.Errorf("shard %d: DIGEST for round %d, want %d", wi+1, gotRound, round)
		}
		if final {
			w.parked = true
		}
		if wd != d {
			return fmt.Errorf("shard %d: replica diverged by round %d: worker %+v, coordinator %+v",
				wi+1, round, wd, d)
		}
	}
	return nil
}

// Finish tears the fleet down. Parked workers get a best-effort DONE so
// they exit through the clean path; everyone is then closed, which unblocks
// any worker mid-send or mid-receive (procConn.Close also reaps the child).
func (l *link) Finish() {
	for _, w := range l.ws {
		if w.parked {
			_ = w.conn.send(ftDone, nil)
		}
		_ = w.rwc.Close()
	}
	l.ws = nil
}
