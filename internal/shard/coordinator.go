package shard

import (
	"fmt"
	"io"

	"lmc/internal/codec"
	"lmc/internal/core"
	"lmc/internal/netstate"
)

// remoteWorker is the coordinator's handle on one worker. parked tracks
// whether the worker is known to be blocked in a receive (just handshaken,
// or between sending its last frame of a step and our next broadcast): only
// a parked worker can be handed a DONE frame without deadlocking an
// unbuffered transport — everyone else is torn down by closing the stream,
// which fails their blocked read or write.
type remoteWorker struct {
	conn   *conn
	rwc    io.ReadWriteCloser
	parked bool
}

// link implements core.ShardLink over the wire protocol. All methods run on
// the checker's sequential merge goroutine; any error returned makes the
// checker degrade (drop the link, Finish, continue in-process), so methods
// never retry.
type link struct {
	ws []*remoteWorker
}

// dial spawns and handshakes the fleet. HELLOs go out to every worker
// before any READY is collected, so workers build their replicas
// concurrently. On any failure the already-spawned workers are torn down
// and the error names the shard.
func dial(cfg Config, opt core.Options) (*link, error) {
	l := &link{}
	for i := 0; i < cfg.Shards; i++ {
		rwc, err := cfg.Spawner.Spawn(i, cfg.Shards)
		if err != nil {
			l.Finish()
			return nil, fmt.Errorf("shard %d: spawn: %w", i, err)
		}
		l.ws = append(l.ws, &remoteWorker{conn: newConn(rwc), rwc: rwc})
	}
	h := hello{
		Version:          Version,
		Spec:             cfg.Spec,
		Count:            cfg.Shards,
		DupLimit:         opt.DupLimit,
		LocalBound:       opt.LocalBound,
		MaxPathDepth:     opt.MaxPathDepth,
		MaxPredecessors:  opt.MaxPredecessors,
		RoundDeliveryCap: opt.RoundDeliveryCap,
	}
	for i, w := range l.ws {
		hi := h
		hi.Idx = i
		if err := w.conn.send(ftHello, hi.encode); err != nil {
			l.Finish()
			return nil, fmt.Errorf("shard %d: sending HELLO: %w", i, err)
		}
	}
	for i, w := range l.ws {
		ft, r, err := w.conn.recv()
		if err != nil {
			l.Finish()
			return nil, fmt.Errorf("shard %d: handshake: %w", i, err)
		}
		switch ft {
		case ftReady:
			w.parked = true
		case ftError:
			msg := r.String()
			l.Finish()
			return nil, fmt.Errorf("shard %d: %s", i, msg)
		default:
			l.Finish()
			return nil, fmt.Errorf("shard %d: expected READY, got %s", i, ft)
		}
	}
	return l, nil
}

func (l *link) Shards() int { return len(l.ws) }

func (l *link) BeginPass(pass, bound int) error {
	for i, w := range l.ws {
		err := w.conn.send(ftPass, func(cw *codec.Writer) {
			cw.Int(pass)
			cw.Int(bound)
		})
		if err != nil {
			return fmt.Errorf("shard %d: sending PASS: %w", i, err)
		}
	}
	return nil
}

func (l *link) BeginRound(pass, round int) error {
	for i, w := range l.ws {
		w.parked = false
		err := w.conn.send(ftRound, func(cw *codec.Writer) { cw.Int(round) })
		if err != nil {
			return fmt.Errorf("shard %d: sending ROUND: %w", i, err)
		}
	}
	return nil
}

func (l *link) CollectRecords(round int) ([][]core.DeliveryRecord, error) {
	out := make([][]core.DeliveryRecord, 0, len(l.ws))
	for i, w := range l.ws {
		ft, r, err := w.conn.recv()
		if err != nil {
			return out, fmt.Errorf("shard %d: collecting records: %w", i, err)
		}
		if ft == ftError {
			return out, fmt.Errorf("shard %d: %s", i, r.String())
		}
		if ft != ftRecords {
			return out, fmt.Errorf("shard %d: expected RECORDS, got %s", i, ft)
		}
		gotRound := r.Int()
		recs := decodeRecords(r)
		if r.Err() != nil {
			return out, fmt.Errorf("shard %d: bad RECORDS: %w", i, r.Err())
		}
		if gotRound != round {
			return out, fmt.Errorf("shard %d: RECORDS for round %d, want %d", i, gotRound, round)
		}
		// The worker now blocks awaiting APPLY — a receive point, so DONE is
		// deliverable if the run ends before the broadcast.
		w.parked = true
		out = append(out, recs)
	}
	return out, nil
}

func (l *link) BroadcastApply(round int, recs []core.DeliveryRecord, delta netstate.EpochDelta) error {
	for i, w := range l.ws {
		w.parked = false
		err := w.conn.send(ftApply, func(cw *codec.Writer) {
			cw.Int(round)
			encodeRecords(cw, recs)
			delta.Encode(cw)
		})
		if err != nil {
			return fmt.Errorf("shard %d: sending APPLY: %w", i, err)
		}
	}
	return nil
}

func (l *link) EndRound(round int, d core.ShardDigest) error {
	for i, w := range l.ws {
		ft, r, err := w.conn.recv()
		if err != nil {
			return fmt.Errorf("shard %d: collecting digest: %w", i, err)
		}
		if ft == ftError {
			return fmt.Errorf("shard %d: %s", i, r.String())
		}
		if ft != ftDigest {
			return fmt.Errorf("shard %d: expected DIGEST, got %s", i, ft)
		}
		gotRound, wd := decodeDigest(r)
		if r.Err() != nil {
			return fmt.Errorf("shard %d: bad DIGEST: %w", i, r.Err())
		}
		if gotRound != round {
			return fmt.Errorf("shard %d: DIGEST for round %d, want %d", i, gotRound, round)
		}
		w.parked = true
		if wd != d {
			return fmt.Errorf("shard %d: replica diverged after round %d: worker %+v, coordinator %+v",
				i, round, wd, d)
		}
	}
	return nil
}

// Finish tears the fleet down. Parked workers get a best-effort DONE so
// they exit through the clean path; everyone is then closed, which unblocks
// any worker mid-send or mid-receive (procConn.Close also reaps the child).
func (l *link) Finish() {
	for _, w := range l.ws {
		if w.parked {
			_ = w.conn.send(ftDone, nil)
		}
		_ = w.rwc.Close()
	}
	l.ws = nil
}
