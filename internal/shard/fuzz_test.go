package shard

import (
	"bytes"
	"reflect"
	"testing"

	"lmc/internal/codec"
	"lmc/internal/core"
)

// FuzzShardFrameRoundTrip throws arbitrary bytes at every decoder a worker
// or coordinator runs on peer input: the frame layer itself, then each
// frame-body decoder. Decoders must never panic or over-allocate on hostile
// input, and whatever they do accept must survive a re-encode/re-decode
// round trip unchanged — the canonical-encoding contract the digest
// comparison depends on.
func FuzzShardFrameRoundTrip(f *testing.F) {
	// Seed with well-formed frames of each body type so the fuzzer starts
	// from the accepting paths, not just the reject paths.
	w := codec.GetWriter()
	hello{Version: Version, Spec: "bench:paxos", Idx: 1, Count: 4,
		DupLimit: 2, LocalBound: 3, MaxPathDepth: 64}.encode(w)
	f.Add(append([]byte(nil), w.Bytes()...))
	w.Reset()
	encodeRecords(w, []core.DeliveryRecord{
		{Entry: 3, Parent: 0xdead, Succ: 0xbeef, Emitted: []codec.Fingerprint{1, 2}},
		{Entry: 0, Parent: 7, Rejected: true},
	})
	f.Add(append([]byte(nil), w.Bytes()...))
	w.Reset()
	encodeActionRecords(w, []core.ActionRecord{
		{Node: 2, Parent: 0xdead, Action: 1, Succ: 0xbeef, Emitted: []codec.Fingerprint{3}},
		{Node: 0, Parent: 7, Action: 0, Rejected: true},
	})
	f.Add(append([]byte(nil), w.Bytes()...))
	w.Reset()
	encodeAnchorReports(w, []core.AnchorReport{
		{Node: 1, Seq: 4, Violated: true, Combos: 6, MaxDepth: 3},
	})
	f.Add(append([]byte(nil), w.Bytes()...))
	w.Reset()
	encodeDigest(w, 9, core.ShardDigest{NetLen: 4, Net: 42, States: 17, Spaces: 99})
	f.Add(append([]byte(nil), w.Bytes()...))
	codec.PutWriter(w)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame layer: a written frame must read back byte-identical, and
		// raw bytes fed to ReadFrame must error or yield a bounded payload.
		var buf bytes.Buffer
		if err := codec.WriteFrame(&buf, data); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		back, err := codec.ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("ReadFrame after WriteFrame: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("frame payload mutated in transit")
		}
		if p, err := codec.ReadFrame(bytes.NewReader(data), 1<<20); err == nil && len(p) > 1<<20 {
			t.Fatalf("ReadFrame returned %d bytes past its max", len(p))
		}

		// Body decoders on raw bytes: must not panic; on clean decode the
		// value must round-trip canonically.
		r := codec.NewReader(data)
		h := decodeHello(r)
		if r.Err() == nil {
			w := codec.GetWriter()
			h.encode(w)
			if h2 := decodeHello(codec.NewReader(w.Bytes())); h2 != h {
				t.Fatalf("hello round trip diverged: %+v vs %+v", h, h2)
			}
			codec.PutWriter(w)
		}

		r = codec.NewReader(data)
		recs := decodeRecords(r)
		if r.Err() == nil {
			w := codec.GetWriter()
			encodeRecords(w, recs)
			recs2 := decodeRecords(codec.NewReader(w.Bytes()))
			if len(recs) != 0 && !reflect.DeepEqual(recs, recs2) {
				t.Fatalf("records round trip diverged: %+v vs %+v", recs, recs2)
			}
			codec.PutWriter(w)
		}

		r = codec.NewReader(data)
		acts := decodeActionRecords(r)
		if r.Err() == nil {
			w := codec.GetWriter()
			encodeActionRecords(w, acts)
			acts2 := decodeActionRecords(codec.NewReader(w.Bytes()))
			if len(acts) != 0 && !reflect.DeepEqual(acts, acts2) {
				t.Fatalf("action records round trip diverged: %+v vs %+v", acts, acts2)
			}
			codec.PutWriter(w)
		}

		r = codec.NewReader(data)
		reps := decodeAnchorReports(r)
		if r.Err() == nil {
			w := codec.GetWriter()
			encodeAnchorReports(w, reps)
			reps2 := decodeAnchorReports(codec.NewReader(w.Bytes()))
			if len(reps) != 0 && !reflect.DeepEqual(reps, reps2) {
				t.Fatalf("anchor reports round trip diverged: %+v vs %+v", reps, reps2)
			}
			codec.PutWriter(w)
		}

		r = codec.NewReader(data)
		round, d := decodeDigest(r)
		if r.Err() == nil {
			w := codec.GetWriter()
			encodeDigest(w, round, d)
			r2, d2 := decodeDigest(codec.NewReader(w.Bytes()))
			if r2 != round || d2 != d {
				t.Fatalf("digest round trip diverged")
			}
			codec.PutWriter(w)
		}
	})
}
