package shard

import (
	"reflect"
	"testing"

	"lmc/internal/codec"
	"lmc/internal/core"
)

func TestHelloRoundTrip(t *testing.T) {
	in := hello{
		Version: Version, Spec: "bench:paxos", Idx: 2, Count: 4,
		DupLimit: 1, LocalBound: 3, MaxPathDepth: 9,
		MaxPredecessors: 64, RoundDeliveryCap: -1,
	}
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	in.encode(w)
	r := codec.NewReader(w.Bytes())
	out := decodeHello(r)
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	in := []core.DeliveryRecord{
		{Entry: 0, Parent: 0xdead, Rejected: true},
		{Entry: 3, Parent: 0xbeef, Succ: 0xf00d,
			Emitted: []codec.Fingerprint{1, 2, 3}},
		{Entry: 7, Parent: 42, Succ: 43}, // no emissions
	}
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	encodeRecords(w, in)
	r := codec.NewReader(w.Bytes())
	out := decodeRecords(r)
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestDecodeRecordsMalformed(t *testing.T) {
	// A hostile record count far beyond the remaining bytes must not
	// allocate or panic; it reports no records and a sticky reader error.
	w := codec.GetWriter()
	encodeInt := func(v int) {
		w.Reset()
		w.Int(v)
	}
	encodeInt(1 << 40)
	r := codec.NewReader(w.Bytes())
	if got := decodeRecords(r); got != nil {
		t.Fatalf("hostile count decoded to %d records", len(got))
	}
	codec.PutWriter(w)

	// A truncated but plausible batch errors instead of fabricating data.
	w2 := codec.GetWriter()
	defer codec.PutWriter(w2)
	encodeRecords(w2, []core.DeliveryRecord{{Entry: 1, Parent: 2, Succ: 3}})
	whole := w2.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		r := codec.NewReader(whole[:cut])
		_ = decodeRecords(r)
		if r.Err() == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", cut, len(whole))
		}
	}
}

func TestDigestRoundTrip(t *testing.T) {
	in := core.ShardDigest{NetLen: 12, Net: 0xabc, States: 99, Spaces: 0xdef}
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	encodeDigest(w, 5, in)
	r := codec.NewReader(w.Bytes())
	round, out := decodeDigest(r)
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if round != 5 || out != in {
		t.Fatalf("round trip mismatch: round=%d digest=%+v", round, out)
	}
}
