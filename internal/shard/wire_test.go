package shard

import (
	"reflect"
	"testing"

	"lmc/internal/codec"
	"lmc/internal/core"
)

func TestHelloRoundTrip(t *testing.T) {
	in := hello{
		Version: Version, Spec: "bench:paxos", Idx: 2, Count: 4,
		DupLimit: 1, LocalBound: 3, MaxPathDepth: 9,
		MaxPredecessors: 64, RoundDeliveryCap: -1,
		MaxTransitions: 500, MaxSystemDepth: 7,
		Batch: 8, ActionRecords: true, ShardInvariants: true,
	}
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	in.encode(w)
	r := codec.NewReader(w.Bytes())
	out := decodeHello(r)
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	in := []core.DeliveryRecord{
		{Entry: 0, Parent: 0xdead, Rejected: true},
		{Entry: 3, Parent: 0xbeef, Succ: 0xf00d,
			Emitted: []codec.Fingerprint{1, 2, 3}},
		{Entry: 7, Parent: 42, Succ: 43}, // no emissions
	}
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	encodeRecords(w, in)
	r := codec.NewReader(w.Bytes())
	out := decodeRecords(r)
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestActionRecordsRoundTrip(t *testing.T) {
	in := []core.ActionRecord{
		{Node: 0, Parent: 0xdead, Action: 2, Rejected: true},
		{Node: 3, Parent: 0xbeef, Action: 0, Succ: 0xf00d,
			Emitted: []codec.Fingerprint{4, 5}},
		{Node: 1, Parent: 42, Action: 1, Succ: 43}, // no emissions
	}
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	encodeActionRecords(w, in)
	r := codec.NewReader(w.Bytes())
	out := decodeActionRecords(r)
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestAnchorReportsRoundTrip(t *testing.T) {
	in := []core.AnchorReport{
		{Node: 0, Seq: 3, Violated: true, Combos: 12, MaxDepth: 4},
		{Node: 2, Seq: 0, Combos: 99, MaxDepth: 7},
	}
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	encodeAnchorReports(w, in)
	r := codec.NewReader(w.Bytes())
	out := decodeAnchorReports(r)
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestRoundBatchRoundTrip(t *testing.T) {
	in := core.RoundBatch{
		Acts:    []core.ActionRecord{{Node: 1, Parent: 2, Action: 0, Succ: 3}},
		Dels:    []core.DeliveryRecord{{Entry: 4, Parent: 5, Succ: 6}},
		Anchors: []core.AnchorReport{{Node: 0, Seq: 1, Combos: 2, MaxDepth: 3}},
	}
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	encodeRoundBatch(w, 7, true, in)
	r := codec.NewReader(w.Bytes())
	round, progress, out := decodeRoundBatch(r)
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if round != 7 || !progress || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: round=%d progress=%v batch=%+v", round, progress, out)
	}
}

func TestDecodeRecordsMalformed(t *testing.T) {
	// A hostile record count far beyond the remaining bytes must not
	// allocate or panic; it reports no records and a sticky reader error.
	w := codec.GetWriter()
	encodeInt := func(v int) {
		w.Reset()
		w.Int(v)
	}
	encodeInt(1 << 40)
	r := codec.NewReader(w.Bytes())
	if got := decodeRecords(r); got != nil {
		t.Fatalf("hostile count decoded to %d records", len(got))
	}
	codec.PutWriter(w)

	// A truncated but plausible batch errors instead of fabricating data.
	w2 := codec.GetWriter()
	defer codec.PutWriter(w2)
	encodeRecords(w2, []core.DeliveryRecord{{Entry: 1, Parent: 2, Succ: 3}})
	whole := w2.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		r := codec.NewReader(whole[:cut])
		_ = decodeRecords(r)
		if r.Err() == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", cut, len(whole))
		}
	}
}

func TestDecodeActionRecordsMalformed(t *testing.T) {
	w := codec.GetWriter()
	w.Int(1 << 40)
	r := codec.NewReader(w.Bytes())
	if got := decodeActionRecords(r); got != nil {
		t.Fatalf("hostile count decoded to %d records", len(got))
	}
	codec.PutWriter(w)

	w2 := codec.GetWriter()
	defer codec.PutWriter(w2)
	encodeActionRecords(w2, []core.ActionRecord{{Node: 1, Parent: 2, Action: 0, Succ: 3}})
	whole := w2.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		r := codec.NewReader(whole[:cut])
		_ = decodeActionRecords(r)
		if r.Err() == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", cut, len(whole))
		}
	}
}

func TestDecodeAnchorReportsMalformed(t *testing.T) {
	w := codec.GetWriter()
	w.Int(1 << 40)
	r := codec.NewReader(w.Bytes())
	if got := decodeAnchorReports(r); got != nil {
		t.Fatalf("hostile count decoded to %d reports", len(got))
	}
	codec.PutWriter(w)

	w2 := codec.GetWriter()
	defer codec.PutWriter(w2)
	encodeAnchorReports(w2, []core.AnchorReport{{Node: 1, Seq: 2, Combos: 3, MaxDepth: 4}})
	whole := w2.Bytes()
	for cut := 0; cut < len(whole); cut++ {
		r := codec.NewReader(whole[:cut])
		_ = decodeAnchorReports(r)
		if r.Err() == nil {
			t.Fatalf("truncation at %d/%d bytes decoded cleanly", cut, len(whole))
		}
	}
}

func TestDigestRoundTrip(t *testing.T) {
	in := core.ShardDigest{NetLen: 12, Net: 0xabc, States: 99, Spaces: 0xdef}
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	encodeDigest(w, 5, in)
	r := codec.NewReader(w.Bytes())
	round, out := decodeDigest(r)
	if r.Err() != nil {
		t.Fatalf("decode error: %v", r.Err())
	}
	if round != 5 || out != in {
		t.Fatalf("round trip mismatch: round=%d digest=%+v", round, out)
	}
}
