package actordemo_test

import (
	"testing"

	"lmc/internal/actorcheck"
	"lmc/internal/actordemo"
	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/protocols/twophase"
	"lmc/internal/testkit"
	"lmc/internal/trace"
)

// buggy is the seeded-bug configuration every test uses: 4 nodes, commit on
// majority, node 2 scripted to refuse — so nodes 0,1,3 can commit while 2
// has unilaterally aborted.
func buggy() *actorcheck.Adapter {
	return actordemo.NewAdapter(4, actordemo.MajorityBug, 2)
}

// TestSeededBugFoundByGENAndOPT is the acceptance gate of the adapter: the
// real implementation's seeded bug must be found through the interception
// seam by both checker variants, with the confirmation path (model replay
// plus uninstrumented raw replay) active.
func TestSeededBugFoundByGENAndOPT(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  func(ad *actorcheck.Adapter) core.Options
	}{
		{"gen", func(ad *actorcheck.Adapter) core.Options {
			return core.Options{Invariant: actordemo.Atomicity(ad)}
		}},
		{"opt", func(ad *actorcheck.Adapter) core.Options {
			return core.Options{Invariant: actordemo.Atomicity(ad),
				Reduction: actordemo.Reduction{Ad: ad}}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ad := buggy()
			res := core.Check(ad, model.InitialSystem(ad), tc.opt(ad))
			if res.Stats.ConfirmedBugs == 0 || len(res.Bugs) == 0 {
				t.Fatalf("seeded bug not found: %s", res.Stats.String())
			}
			bug := res.Bugs[0]
			if bug.Violation.Invariant != actordemo.AtomicityName {
				t.Fatalf("unexpected invariant %q", bug.Violation.Invariant)
			}
			// The confirmed witness must replay to the violating state on
			// the uninstrumented implementation too (core already did this
			// — model.RawReplayer — but assert it end to end).
			final, err := ad.ReplayRaw(model.InitialSystem(ad), nil, bug.Schedule)
			if err != nil {
				t.Fatalf("raw replay of confirmed witness failed: %v", err)
			}
			if final.Fingerprint() != bug.System.Fingerprint() {
				t.Fatalf("raw replay reached %v, witness claims %v",
					final.Fingerprint(), bug.System.Fingerprint())
			}
			if v := actordemo.Atomicity(ad).Check(final); v == nil {
				t.Fatal("raw replay final state does not violate atomicity")
			}
		})
	}
}

// TestCorrectVariantQuiet: without the seeded bug the adapter-explored
// space must be bug-free and fully explored.
func TestCorrectVariantQuiet(t *testing.T) {
	ad := actordemo.NewAdapter(4, actordemo.NoBug, 2)
	res := core.Check(ad, model.InitialSystem(ad), core.Options{Invariant: actordemo.Atomicity(ad)})
	if len(res.Bugs) != 0 {
		t.Fatalf("correct variant reported %d bugs", len(res.Bugs))
	}
	if !res.Complete {
		t.Fatalf("exploration incomplete: %s (%s)", res.StopReason, res.Stats.String())
	}
}

// TestStateSpaceMatchesHandWrittenModel: the service is semantics-identical
// to internal/protocols/twophase, so exploring the real code through the
// adapter must visit exactly as many node states and transitions as the
// hand-written model, find the same number of bugs, and (under the
// reduction) materialize the same number of system states. This is the
// strongest cheap evidence that the interception seam neither hides nor
// invents behavior.
func TestStateSpaceMatchesHandWrittenModel(t *testing.T) {
	ad := buggy()
	mm := twophase.New(4, twophase.MajorityBug, 2)

	adRes := core.Check(ad, model.InitialSystem(ad), core.Options{Invariant: actordemo.Atomicity(ad)})
	mmRes := core.Check(mm, model.InitialSystem(mm), core.Options{Invariant: twophase.Atomicity()})
	if adRes.Stats.NodeStates != mmRes.Stats.NodeStates ||
		adRes.Stats.Transitions != mmRes.Stats.Transitions ||
		adRes.Stats.SystemStates != mmRes.Stats.SystemStates ||
		adRes.Stats.ConfirmedBugs != mmRes.Stats.ConfirmedBugs {
		t.Fatalf("adapter space diverges from model space:\nadapter: %s\nmodel:   %s",
			adRes.Stats.String(), mmRes.Stats.String())
	}

	adOpt := core.Check(ad, model.InitialSystem(ad), core.Options{
		Invariant: actordemo.Atomicity(ad), Reduction: actordemo.Reduction{Ad: ad}})
	mmOpt := core.Check(mm, model.InitialSystem(mm), core.Options{
		Invariant: twophase.Atomicity(), Reduction: twophase.Reduction{}})
	if adOpt.Stats.SystemStates != mmOpt.Stats.SystemStates ||
		adOpt.Stats.ConfirmedBugs != mmOpt.Stats.ConfirmedBugs {
		t.Fatalf("adapter OPT space diverges from model OPT space:\nadapter: %s\nmodel:   %s",
			adOpt.Stats.String(), mmOpt.Stats.String())
	}
}

// TestConformance runs the reusable adapter conformance checks over both
// variants.
func TestConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		ad   *actorcheck.Adapter
	}{
		{"correct", actordemo.NewAdapter(4, actordemo.NoBug, 2)},
		{"majority-bug", buggy()},
		{"three-nodes", actordemo.NewAdapter(3, actordemo.MajorityBug, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := actorcheck.Conformance(tc.ad, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRawReplayRejectsTamperedSchedule: dropping an event from a confirmed
// witness must make the uninstrumented replay fail or land elsewhere — raw
// replay is a checker, not a formality.
func TestRawReplayRejectsTamperedSchedule(t *testing.T) {
	ad := buggy()
	res := core.Check(ad, model.InitialSystem(ad), core.Options{Invariant: actordemo.Atomicity(ad)})
	if len(res.Bugs) == 0 {
		t.Fatal("no bug to tamper with")
	}
	bug := res.Bugs[0]
	if len(bug.Schedule) < 2 {
		t.Fatalf("witness too short to tamper with: %d events", len(bug.Schedule))
	}
	tampered := append(trace.Schedule{}, bug.Schedule[1:]...)
	final, err := ad.ReplayRaw(model.InitialSystem(ad), nil, tampered)
	if err == nil && final.Fingerprint() == bug.System.Fingerprint() {
		t.Fatal("tampered schedule replayed to the witness state")
	}
}

// TestIndependentReplayersAgree: the three replayers — model-level
// trace.Replay, testkit.Replay, and the uninstrumented ReplayRaw — must
// agree on a confirmed witness, the diffcheck dual-replay discipline
// extended to the adapter's third leg.
func TestIndependentReplayersAgree(t *testing.T) {
	ad := buggy()
	start := model.InitialSystem(ad)
	res := core.Check(ad, start, core.Options{Invariant: actordemo.Atomicity(ad)})
	if len(res.Bugs) == 0 {
		t.Fatal("no bug found")
	}
	bug := res.Bugs[0]
	want := bug.System.Fingerprint()

	rr := trace.Replay(ad, start, bug.Schedule)
	if rr.Err != nil || rr.Fingerprint() != want {
		t.Fatalf("trace replay: err=%v fp=%v want=%v", rr.Err, rr.Fingerprint(), want)
	}
	// testkit + uninstrumented legs, asserted together.
	if _, err := testkit.ReplayAgree(ad, start, nil, bug.Schedule, uint64(want)); err != nil {
		t.Fatalf("replay agreement: %v", err)
	}
}
