package actordemo_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lmc/internal/actordemo"
	"lmc/internal/core"
	"lmc/internal/model"
	"lmc/internal/testkit"
	"lmc/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden witness artifact")

const goldenPath = "testdata/witness_majority.json"

// TestGoldenWitness pins down the repro artifact of the seeded bug: the
// checker's first confirmed witness, serialized to JSON, must match the
// committed file byte for byte, and the committed file must replay to the
// same violation through the adapter (trace.Replay, testkit.Replay) and
// through the raw implementation (ReplayRaw). The checker is deterministic
// for any worker count (TestWorkersParity), so the artifact is stable;
// if an intentional engine change shifts the witness, regenerate with
//
//	go test ./internal/actordemo -run TestGoldenWitness -update
func TestGoldenWitness(t *testing.T) {
	ad := buggy()
	start := model.InitialSystem(ad)
	res := core.Check(ad, start, core.Options{Invariant: actordemo.Atomicity(ad), SoundnessShare: -1})
	if len(res.Bugs) == 0 {
		t.Fatal("seeded bug not found")
	}
	bug := res.Bugs[0]
	got, err := ad.MarshalWitness(actordemo.AtomicityName, bug.System.Fingerprint(), bug.Schedule)
	if err != nil {
		t.Fatalf("marshaling witness: %v", err)
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden artifact (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("witness artifact drifted from %s (regenerate with -update if intentional)\ngot:\n%s",
			goldenPath, got)
	}

	// The committed artifact stands on its own: decode it and drive all
	// three replayers from scratch.
	w, sched, wantFP, err := ad.UnmarshalWitness(want)
	if err != nil {
		t.Fatalf("decoding golden artifact: %v", err)
	}
	if w.Invariant != actordemo.AtomicityName {
		t.Fatalf("artifact names invariant %q", w.Invariant)
	}
	rr := trace.Replay(ad, start, sched)
	if rr.Err != nil || rr.Fingerprint() != wantFP {
		t.Fatalf("adapter replay of artifact: err=%v fp=%v want=%v", rr.Err, rr.Fingerprint(), wantFP)
	}
	if v := actordemo.Atomicity(ad).Check(rr.Final); v == nil {
		t.Fatal("adapter replay final state does not violate atomicity")
	}
	// The testkit and uninstrumented legs in one call.
	if _, err := testkit.ReplayAgree(ad, start, nil, sched, uint64(wantFP)); err != nil {
		t.Fatalf("replaying artifact: %v", err)
	}
	rawFinal, err := ad.ReplayRaw(start, nil, sched)
	if err != nil {
		t.Fatalf("raw replay of artifact: %v", err)
	}
	if v := actordemo.Atomicity(ad).Check(rawFinal); v == nil {
		t.Fatal("raw implementation final state does not violate atomicity")
	}
}
