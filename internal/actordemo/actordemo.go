// Package actordemo is the reference system under test for package
// actorcheck: a small replicated-register commit service written the way
// real actor-style Go code is written — a struct of mutable state, a
// mailbox handler mutating it in place, sends through a context — with no
// knowledge of the model checker beyond the actorcheck interfaces.
//
// The service runs two-phase commit over a register write. Node 0 is the
// coordinator: a BeginCommit application call makes it ask every replica to
// prepare; replicas acknowledge (replicas scripted as refusers reject and
// abort unilaterally), and the coordinator broadcasts whether to apply the
// write — commit only on unanimous acknowledgment. The seeded MajorityBug
// variant applies the write on a mere majority of acknowledgments, so a
// refuser's unilateral abort can disagree with the rest of the cluster —
// the atomicity violation the checkers must find through the adapter.
//
// The protocol is deliberately semantics-identical to the hand-written
// model in internal/protocols/twophase: the two explore isomorphic state
// spaces, which makes "adapter overhead vs. a hand-written model" a fair,
// like-for-like measurement (cmd/benchjson gates it at ≤3×).
package actordemo

import (
	"fmt"

	"lmc/internal/actorcheck"
	"lmc/internal/codec"
	"lmc/internal/model"
)

// BugKind selects a service variant.
type BugKind int

const (
	// NoBug applies the write only on unanimous acknowledgment.
	NoBug BugKind = iota
	// MajorityBug applies the write on a majority of acknowledgments.
	MajorityBug
)

// String names the variant.
func (b BugKind) String() string {
	if b == MajorityBug {
		return "majority-bug"
	}
	return "correct"
}

// Outcome is a node's verdict on the register write.
type Outcome uint8

const (
	// Pending means undecided.
	Pending Outcome = iota
	// Committed means the write was applied at this node.
	Committed
	// Aborted means the write was abandoned at this node.
	Aborted
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Committed:
		return "commit"
	case Aborted:
		return "abort"
	default:
		return "pending"
	}
}

// Prepare asks a replica to acknowledge the pending register write. The
// sender travels in the adapter's envelope, so the payload itself is empty.
type Prepare struct{}

// Encode implements codec.Encoder.
func (Prepare) Encode(w *codec.Writer) { w.String("reg.prepare") }

// String implements actorcheck.Payload.
func (Prepare) String() string { return "Prepare{}" }

// Ack is a replica's answer to Prepare.
type Ack struct {
	// OK reports whether the replica acknowledged the write.
	OK bool `json:"ok"`
}

// Encode implements codec.Encoder.
func (a Ack) Encode(w *codec.Writer) {
	w.String("reg.ack")
	w.Bool(a.OK)
}

// String implements actorcheck.Payload.
func (a Ack) String() string { return fmt.Sprintf("Ack{ok=%v}", a.OK) }

// Apply is the coordinator's outcome broadcast.
type Apply struct {
	// Commit reports whether to apply the write.
	Commit bool `json:"commit"`
}

// Encode implements codec.Encoder.
func (a Apply) Encode(w *codec.Writer) {
	w.String("reg.apply")
	w.Bool(a.Commit)
}

// String implements actorcheck.Payload.
func (a Apply) String() string { return fmt.Sprintf("Apply{commit=%v}", a.Commit) }

// BeginCommit is the application call that starts the commit round on the
// coordinator.
type BeginCommit struct{}

// Encode implements codec.Encoder.
func (BeginCommit) Encode(w *codec.Writer) { w.String("reg.begin") }

// String implements actorcheck.Tick.
func (BeginCommit) String() string { return "BeginCommit{}" }

// Register is one node of the service — the real implementation the
// checker explores. Configuration (identity, cluster size, variant,
// scripted refusal) is fixed at construction; everything below the
// "mutable state" marker is the checkable state captured by Snapshot.
type Register struct {
	id      model.NodeID
	n       int
	bug     BugKind
	refuser bool

	// mutable state
	begun   bool         // coordinator: round started
	acked   bool         // replica (and coordinator): acknowledgment cast
	outcome Outcome      // this node's verdict
	oks     map[int]bool // coordinator: acknowledging nodes
	noes    map[int]bool // coordinator: refusing nodes
	decided bool         // coordinator: outcome broadcast
}

// NewRegister constructs node id of an n-node cluster in its initial
// state. A refuser is scripted to reject the write, the way a replica with
// a conflicting local constraint would.
func NewRegister(id model.NodeID, n int, bug BugKind, refuser bool) *Register {
	return &Register{id: id, n: n, bug: bug, refuser: refuser,
		oks: map[int]bool{}, noes: map[int]bool{}}
}

// Snapshot implements actorcheck.Snapshotter with an explicit canonical
// encoding — the mutable state includes maps, so the gob default would not
// be deterministic (codec.IntSet writes them sorted).
func (r *Register) Snapshot() ([]byte, error) {
	w := codec.GetWriter()
	defer codec.PutWriter(w)
	w.Bool(r.begun)
	w.Bool(r.acked)
	w.Byte(byte(r.outcome))
	w.Bool(r.decided)
	w.IntSet(r.oks)
	w.IntSet(r.noes)
	return w.Clone(), nil
}

// Restore implements actorcheck.Snapshotter.
func (r *Register) Restore(blob []byte) error {
	rd := codec.NewReader(blob)
	r.begun = rd.Bool()
	r.acked = rd.Bool()
	r.outcome = Outcome(rd.Byte())
	r.decided = rd.Bool()
	r.oks = intSet(rd.Ints())
	r.noes = intSet(rd.Ints())
	if err := rd.Err(); err != nil {
		return err
	}
	if rd.Remaining() != 0 {
		return fmt.Errorf("actordemo: %d trailing bytes in snapshot", rd.Remaining())
	}
	return nil
}

// intSet rebuilds the map form codec.IntSet consumes.
func intSet(keys []int) map[int]bool {
	m := make(map[int]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

// String renders the node's state for traces.
func (r *Register) String() string {
	return fmt.Sprintf("{%s acked=%v}", r.outcome, r.acked)
}

// Ticks implements actorcheck.Actor: the coordinator can start the round
// while it has not yet.
func (r *Register) Ticks() []actorcheck.Tick {
	if r.id == 0 && !r.begun {
		return []actorcheck.Tick{BeginCommit{}}
	}
	return nil
}

// OnTick implements actorcheck.Actor.
func (r *Register) OnTick(ctx actorcheck.Context, t actorcheck.Tick) error {
	if _, ok := t.(BeginCommit); !ok {
		return fmt.Errorf("unknown tick %s", t)
	}
	if r.id != 0 || r.begun {
		return fmt.Errorf("BeginCommit on %v (begun=%v)", r.id, r.begun)
	}
	r.begun = true
	r.acked = true
	r.oks[0] = true // the coordinator acknowledges its own write
	for to := 1; to < r.n; to++ {
		ctx.Send(model.NodeID(to), Prepare{})
	}
	return nil
}

// quorum is the acknowledgment threshold for applying the write.
func (r *Register) quorum() int {
	if r.bug == MajorityBug {
		return r.n/2 + 1
	}
	return r.n
}

// OnMessage implements actorcheck.Actor — the mailbox handler.
func (r *Register) OnMessage(ctx actorcheck.Context, from model.NodeID, p actorcheck.Payload) error {
	switch msg := p.(type) {
	case Prepare:
		if r.id == 0 {
			return fmt.Errorf("coordinator received Prepare")
		}
		if r.acked {
			return nil // duplicate request: the answer is already on the wire
		}
		r.acked = true
		ok := !r.refuser
		if !ok {
			// A refuser abandons the write unilaterally.
			r.outcome = Aborted
		}
		ctx.Send(0, Ack{OK: ok})
		return nil
	case Ack:
		if r.id != 0 || !r.begun {
			return fmt.Errorf("Ack at %v before round start", r.id)
		}
		if r.decided {
			return nil // late acknowledgment after the broadcast
		}
		if msg.OK {
			r.oks[int(from)] = true
		} else {
			r.noes[int(from)] = true
		}
		commit := len(r.oks) >= r.quorum()
		abort := len(r.noes) > 0 && r.bug == NoBug
		allIn := len(r.oks)+len(r.noes) == r.n && len(r.noes) > 0
		if !commit && !abort && !allIn {
			return nil
		}
		r.decided = true
		if commit {
			r.outcome = Committed
		} else {
			r.outcome = Aborted
		}
		for to := 1; to < r.n; to++ {
			ctx.Send(model.NodeID(to), Apply{Commit: commit})
		}
		return nil
	case Apply:
		if r.id == 0 {
			return fmt.Errorf("coordinator received Apply")
		}
		if r.outcome == Pending {
			if msg.Commit {
				r.outcome = Committed
			} else {
				r.outcome = Aborted
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown payload %s", p)
	}
}
