package actordemo

import (
	"lmc/internal/actorcheck"
	"lmc/internal/model"
	"lmc/internal/spec"
)

// NewAdapter wraps an n-node cluster of the service behind the checker's
// Machine interface. Refusers lists the replicas scripted to reject the
// write; payload and tick types are pre-registered so witness schedules
// serialize to JSON artifacts.
func NewAdapter(n int, bug BugKind, refusers ...model.NodeID) *actorcheck.Adapter {
	refuse := make(map[model.NodeID]bool, len(refusers))
	for _, id := range refusers {
		refuse[id] = true
	}
	name := "actordemo"
	if bug != NoBug {
		name = "actordemo-" + bug.String()
	}
	ad := actorcheck.New(name, n, func(id model.NodeID) actorcheck.Actor {
		return NewRegister(id, n, bug, refuse[id])
	})
	ad.RegisterPayloads(Prepare{}, Ack{}, Apply{})
	ad.RegisterTicks(BeginCommit{})
	return ad
}

// AtomicityName names the service's safety invariant.
const AtomicityName = "register-atomicity"

// Atomicity is the system invariant checked through the adapter: no two
// nodes reach different verdicts on the write. It inspects the
// implementation's own state via Adapter.View — invariants over adapter
// states are written against the real types, never against snapshot bytes.
func Atomicity(ad *actorcheck.Adapter) spec.Invariant {
	return spec.InvariantFunc{
		InvName: AtomicityName,
		Fn: func(ss model.SystemState) *spec.Violation {
			for i := 0; i < len(ss); i++ {
				ri, ok := view(ad, model.NodeID(i), ss[i])
				if !ok {
					return nil
				}
				if ri.outcome == Pending {
					continue
				}
				for j := i + 1; j < len(ss); j++ {
					rj, ok := view(ad, model.NodeID(j), ss[j])
					if !ok {
						return nil
					}
					if rj.outcome != Pending && rj.outcome != ri.outcome {
						return spec.Violate(AtomicityName, ss,
							"%v decided %s but %v decided %s",
							model.NodeID(i), ri.outcome, model.NodeID(j), rj.outcome)
					}
				}
			}
			return nil
		},
	}
}

// view decodes a node state back to the implementation type (memoized by
// the adapter; read-only).
func view(ad *actorcheck.Adapter, n model.NodeID, s model.State) (*Register, bool) {
	a, err := ad.View(n, s)
	if err != nil {
		return nil, false
	}
	r, ok := a.(*Register)
	return r, ok
}

// Reduction is the LMC-OPT projection for Atomicity, identical in shape to
// the hand-written model's: a node state matters only once it decided, and
// two decisions conflict when they differ.
type Reduction struct {
	Ad *actorcheck.Adapter
}

// Interest implements spec.Reduction.
func (r Reduction) Interest(n model.NodeID, s model.State) (spec.Interest, bool) {
	reg, ok := view(r.Ad, n, s)
	if !ok || reg.outcome == Pending {
		return nil, false
	}
	return reg.outcome, true
}

// Conflict implements spec.Reduction.
func (Reduction) Conflict(a, b spec.Interest) bool {
	oa, ok := a.(Outcome)
	if !ok {
		return false
	}
	ob, ok := b.(Outcome)
	if !ok {
		return false
	}
	return oa != ob
}

// InterestKey implements spec.Keyer.
func (Reduction) InterestKey(i spec.Interest) string {
	o, ok := i.(Outcome)
	if !ok {
		return ""
	}
	return o.String()
}
