package bench

import (
	"strings"
	"testing"
	"time"
)

// TestTablePrinting checks alignment and notes.
func TestTablePrinting(t *testing.T) {
	tbl := &Table{Title: "t", Columns: []string{"a", "bb"}, Notes: []string{"n1"}}
	tbl.Add("x", "y")
	tbl.Addf(12, 3.5)
	s := tbl.String()
	for _, want := range []string{"== t ==", "a", "bb", "x", "12", "3.5", "note: n1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

// TestWorkloadRegistry: every workload resolves, builds a start state, and
// carries something to check.
func TestWorkloadRegistry(t *testing.T) {
	for _, w := range Workloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			got, err := Lookup(w.Name)
			if err != nil || got.Name != w.Name {
				t.Fatalf("lookup: %v", err)
			}
			start, err := w.StartState()
			if err != nil {
				t.Fatalf("start state: %v", err)
			}
			if len(start) != w.Machine.NumNodes() {
				t.Fatalf("start size %d != %d nodes", len(start), w.Machine.NumNodes())
			}
			if w.Invariant == nil && len(w.Locals) == 0 {
				t.Fatal("workload has nothing to check")
			}
		})
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown workload resolved")
	}
}

// TestTreePrimerTable regenerates E10 and sanity-checks the shape: fewer
// local transitions, at least one rejected preliminary violation, no bugs.
func TestTreePrimerTable(t *testing.T) {
	tbl := TreePrimer()
	s := tbl.String()
	if !strings.Contains(s, "confirmed bugs") {
		t.Fatalf("unexpected table:\n%s", s)
	}
}

// TestTransitionsShape: LMC transitions must undercut B-DFS by a wide
// margin on the one-proposal space (the §5.1 claim).
func TestTransitionsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full one-proposal space three times")
	}
	bdfs, gen, opt := runSeries(2 * time.Minute)
	if !bdfs.Complete || !gen.Complete || !opt.Complete {
		t.Fatalf("incomplete runs")
	}
	if bdfs.Stats.Transitions < 5*gen.Stats.Transitions {
		t.Errorf("B-DFS/LMC transition ratio too small: %d / %d",
			bdfs.Stats.Transitions, gen.Stats.Transitions)
	}
	if opt.Stats.SystemStates != 0 {
		t.Errorf("LMC-OPT created %d system states, want 0", opt.Stats.SystemStates)
	}
	if gen.Stats.SystemStates == 0 {
		t.Errorf("LMC-GEN created no system states")
	}
	// Figure 10's ordering: OPT faster than GEN faster than B-DFS.
	if !(opt.Stats.Elapsed < gen.Stats.Elapsed && gen.Stats.Elapsed < bdfs.Stats.Elapsed) {
		t.Errorf("elapsed ordering broken: opt=%v gen=%v bdfs=%v",
			opt.Stats.Elapsed, gen.Stats.Elapsed, bdfs.Stats.Elapsed)
	}
}

// TestBugArtifacts: the two bug-report tables must actually contain the
// rediscovered bugs.
func TestBugArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("bug hunts")
	}
	pb, err := PaxosBug(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(pb.String(), "NOT FOUND") {
		t.Fatalf("§5.5 bug not rediscovered:\n%s", pb)
	}
	ob, err := OnePaxosBug(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ob.String(), "NOT FOUND") {
		t.Fatalf("§5.6 bug not rediscovered:\n%s", ob)
	}
}
