package bench

import (
	"fmt"
	"time"

	"lmc/internal/actordemo"
	"lmc/internal/core"
	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/online"
	"lmc/internal/protocols/chain"
	"lmc/internal/protocols/onepaxos"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/tree"
	"lmc/internal/protocols/twophase"
	"lmc/internal/sim"
	"lmc/internal/simnet"
	"lmc/internal/stats"
)

// oneProposal is the §5.1 benchmark space: three nodes, one proposal.
func oneProposal() *paxos.Machine {
	return paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
}

// twoProposals is the §5.2 scalability space: two competing proposals.
func twoProposals() *paxos.Machine {
	return paxos.New(3, paxos.NoBug, paxos.EachOnce{Nodes: []model.NodeID{0, 1}, Index: 0})
}

// buggyFromLive returns the §5.5 buggy machine and its live state.
func buggyFromLive() (*paxos.Machine, model.SystemState, error) {
	m := paxos.New(3, paxos.LastResponseBug, paxos.ActiveIndex{MaxPerNode: 1})
	live, err := paxos.PaperLiveState(m)
	return m, live, err
}

// runSeries runs the three §5.1 configurations with per-depth recording.
func runSeries(budget time.Duration) (bdfs *global.Result, gen, opt *core.Result) {
	m := oneProposal()
	start := model.InitialSystem(m)
	bdfs = global.Check(m, start, global.Options{
		Invariant:    paxos.Agreement(),
		Strategy:     global.BFS, // completes depths in order: one run yields the series
		Budget:       budget,
		RecordSeries: true,
	})
	gen = core.Check(m, start, core.Options{
		Invariant:    paxos.Agreement(),
		Budget:       budget,
		RecordSeries: true,
	})
	opt = core.Check(m, start, core.Options{
		Invariant:    paxos.Agreement(),
		Reduction:    paxos.Reduction{},
		Budget:       budget,
		RecordSeries: true,
	})
	return bdfs, gen, opt
}

// mergeSeries renders several per-depth series side by side; column i+1
// holds pick(sample) for series i, "-" where a series has no sample at the
// depth.
func mergeSeries(title string, names []string, series []*stats.Series, pick func(stats.Sample) string, notes ...string) *Table {
	t := &Table{Title: title, Columns: append([]string{"depth"}, names...), Notes: notes}
	depths := map[int]bool{}
	maps := make([]map[int]stats.Sample, len(series))
	for i, se := range series {
		maps[i] = map[int]stats.Sample{}
		if se == nil {
			continue
		}
		for _, s := range se.Points() {
			maps[i][s.Depth] = s
			depths[s.Depth] = true
		}
	}
	ordered := make([]int, 0, len(depths))
	for d := range depths {
		ordered = append(ordered, d)
	}
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if ordered[j] < ordered[i] {
				ordered[i], ordered[j] = ordered[j], ordered[i]
			}
		}
	}
	for _, d := range ordered {
		row := []string{fmt.Sprintf("%d", d)}
		for i := range series {
			if s, ok := maps[i][d]; ok {
				row = append(row, pick(s))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return t
}

func secs(d time.Duration) string { return fmt.Sprintf("%.6f", d.Seconds()) }

// Fig10 regenerates Figure 10: elapsed time vs depth for B-DFS, LMC-GEN
// and LMC-OPT on the one-proposal Paxos space.
func Fig10(budget time.Duration) *Table {
	bdfs, gen, opt := runSeries(budget)
	t := mergeSeries("Figure 10: elapsed seconds vs depth (Paxos, 1 proposal)",
		[]string{"B-DFS", "LMC-GEN", "LMC-OPT"},
		[]*stats.Series{bdfs.Series, gen.Series, opt.Series},
		func(s stats.Sample) string { return secs(s.Elapsed) },
		fmt.Sprintf("totals: B-DFS %v, LMC-GEN %v, LMC-OPT %v (paper: 1514 s, 5.16 s, 0.189 s on a 3 GHz P4)",
			bdfs.Stats.Elapsed.Round(time.Millisecond),
			gen.Stats.Elapsed.Round(time.Millisecond),
			opt.Stats.Elapsed.Round(time.Millisecond)),
		fmt.Sprintf("speedups: LMC-GEN %.0fx, LMC-OPT %.0fx over B-DFS (paper: ~300x, ~8000x)",
			ratio(bdfs.Stats.Elapsed, gen.Stats.Elapsed),
			ratio(bdfs.Stats.Elapsed, opt.Stats.Elapsed)))
	return t
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Fig11 regenerates Figure 11: explored states vs depth. The B-DFS column
// counts global states, the LMC columns count created system states, and
// LMC-local counts visited node states.
func Fig11(budget time.Duration) *Table {
	bdfs, gen, opt := runSeries(budget)
	t := mergeSeries("Figure 11: explored states vs depth (Paxos, 1 proposal)",
		[]string{"B-DFS", "LMC-GEN-system", "LMC-OPT-system", "LMC-local"},
		[]*stats.Series{bdfs.Series, gen.Series, opt.Series, gen.Series},
		func(s stats.Sample) string {
			// The pick function cannot distinguish columns; rows are built
			// below instead.
			return ""
		})
	// Rebuild rows with per-column quantities.
	t.Rows = nil
	type point struct{ g, gs, os, nl string }
	pts := map[int]*point{}
	get := func(d int) *point {
		p := pts[d]
		if p == nil {
			p = &point{g: "-", gs: "-", os: "-", nl: "-"}
			pts[d] = p
		}
		return p
	}
	for _, s := range bdfs.Series.Points() {
		get(s.Depth).g = fmt.Sprintf("%d", s.GlobalStates)
	}
	for _, s := range gen.Series.Points() {
		get(s.Depth).gs = fmt.Sprintf("%d", s.SystemStates)
		get(s.Depth).nl = fmt.Sprintf("%d", s.NodeStates)
	}
	for _, s := range opt.Series.Points() {
		get(s.Depth).os = fmt.Sprintf("%d", s.SystemStates)
	}
	depths := make([]int, 0, len(pts))
	for d := range pts {
		depths = append(depths, d)
	}
	for i := 0; i < len(depths); i++ {
		for j := i + 1; j < len(depths); j++ {
			if depths[j] < depths[i] {
				depths[i], depths[j] = depths[j], depths[i]
			}
		}
	}
	for _, d := range depths {
		p := pts[d]
		t.Add(fmt.Sprintf("%d", d), p.g, p.gs, p.os, p.nl)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("totals: B-DFS %d global states; LMC %d node states, %d (GEN) vs %d (OPT) system states (paper: OPT creates zero)",
			bdfs.Stats.GlobalStates, gen.Stats.NodeStates, gen.Stats.SystemStates, opt.Stats.SystemStates))
	return t
}

// Fig12 regenerates Figure 12: heap growth vs depth, including the
// LMC-local configuration (system-state creation disabled).
func Fig12(budget time.Duration) *Table {
	bdfs, gen, opt := runSeries(budget)
	m := oneProposal()
	local := core.Check(m, model.InitialSystem(m), core.Options{
		Invariant:           paxos.Agreement(),
		DisableSystemStates: true,
		Budget:              budget,
		RecordSeries:        true,
	})
	t := mergeSeries("Figure 12: heap growth (KB) vs depth (Paxos, 1 proposal)",
		[]string{"B-DFS", "LMC-GEN", "LMC-OPT", "LMC-local"},
		[]*stats.Series{bdfs.Series, gen.Series, opt.Series, local.Series},
		func(s stats.Sample) string { return fmt.Sprintf("%.0f", float64(s.HeapBytes)/1024) },
		"paper: all LMC configurations stay under ~200 KB and grow linearly; B-DFS grows exponentially toward 1 MB")
	return t
}

// Fig13 regenerates Figure 13: the overhead breakdown of LMC-OPT on the
// buggy Paxos implementation — the full checker vs soundness verification
// disabled ("LMC-system-state") vs system-state creation disabled
// ("LMC-explore").
func Fig13(budget time.Duration) (*Table, error) {
	run := func(tweak func(*core.Options)) (*core.Result, error) {
		m, live, err := buggyFromLive()
		if err != nil {
			return nil, err
		}
		opt := core.Options{
			Invariant:    paxos.Agreement(),
			Reduction:    paxos.Reduction{},
			Budget:       budget,
			RecordSeries: true,
		}
		tweak(&opt)
		return core.Check(m, live, opt), nil
	}
	full, err := run(func(o *core.Options) { o.StopAtFirstBug = true })
	if err != nil {
		return nil, err
	}
	noSound, err := run(func(o *core.Options) { o.DisableSoundness = true })
	if err != nil {
		return nil, err
	}
	explore, err := run(func(o *core.Options) { o.DisableSystemStates = true })
	if err != nil {
		return nil, err
	}
	t := mergeSeries("Figure 13: LMC overheads on buggy Paxos (elapsed seconds vs depth)",
		[]string{"LMC-OPT", "LMC-system-state", "LMC-explore"},
		[]*stats.Series{full.Series, noSound.Series, explore.Series},
		func(s stats.Sample) string { return secs(s.Elapsed) },
		fmt.Sprintf("LMC-OPT: %d soundness calls, %v avg/call, %d sequences checked (paper: 773 calls, 45 ms avg, 427,731 sequences)",
			full.Stats.SoundnessCalls, full.Stats.AvgSoundnessCall().Round(time.Microsecond),
			full.Stats.SequencesChecked),
		fmt.Sprintf("LMC-OPT stopped at depth %d with %d confirmed bug(s) (paper: rediscovered at depth 28)",
			full.Stats.MaxDepth, full.Stats.ConfirmedBugs))
	return t, nil
}

// Transitions regenerates the §5.1 transition-count comparison: B-DFS
// executes each node transition once per global state that embeds it; LMC
// executes it once.
func Transitions(budget time.Duration) *Table {
	bdfs, gen, opt := runSeries(budget)
	t := &Table{
		Title:   "§5.1: transitions executed (Paxos, 1 proposal)",
		Columns: []string{"checker", "transitions", "states", "elapsed"},
		Notes: []string{
			fmt.Sprintf("ratio B-DFS/LMC = %.0fx (paper: 157,332 / 1,186 = ~132x)",
				float64(bdfs.Stats.Transitions)/float64(gen.Stats.Transitions)),
		},
	}
	t.Addf("B-DFS", bdfs.Stats.Transitions, bdfs.Stats.GlobalStates, bdfs.Stats.Elapsed.Round(time.Millisecond))
	t.Addf("LMC-GEN", gen.Stats.Transitions, gen.Stats.NodeStates, gen.Stats.Elapsed.Round(time.Millisecond))
	t.Addf("LMC-OPT", opt.Stats.Transitions, opt.Stats.NodeStates, opt.Stats.Elapsed.Round(time.Millisecond))
	return t
}

// Scalability regenerates §5.2: on the two-proposal space neither checker
// finishes; the table reports the depth each reaches within the budget.
func Scalability(budget time.Duration) *Table {
	m := twoProposals()
	start := model.InitialSystem(m)
	bdfs := global.Check(m, start, global.Options{
		Invariant: paxos.Agreement(),
		Strategy:  global.BFS,
		Budget:    budget,
	})
	lmc := core.Check(m, start, core.Options{
		Invariant:      paxos.Agreement(),
		Reduction:      paxos.Reduction{},
		Budget:         budget,
		LocalBoundStep: 1,
		MaxLocalBound:  4,
	})
	t := &Table{
		Title:   fmt.Sprintf("§5.2: scalability limits (Paxos, 2 proposals, %v budget each)", budget),
		Columns: []string{"checker", "depth reached", "transitions", "states", "complete"},
		Notes: []string{
			"paper: after hours, B-DFS reached depth 20 of 41; LMC reached 39 of 68; soundness verification dominates LMC's slowdown",
		},
	}
	t.Addf("B-DFS", bdfs.Stats.MaxDepth, bdfs.Stats.Transitions, bdfs.Stats.GlobalStates, bdfs.Complete)
	t.Addf("LMC-OPT", lmc.Stats.MaxDepth, lmc.Stats.Transitions, lmc.Stats.NodeStates, lmc.Complete)
	return t
}

// Soundness regenerates the §5.4 soundness-verification statistics from
// the buggy-Paxos run.
func Soundness(budget time.Duration) (*Table, error) {
	m, live, err := buggyFromLive()
	if err != nil {
		return nil, err
	}
	res := core.Check(m, live, core.Options{
		Invariant:      paxos.Agreement(),
		Reduction:      paxos.Reduction{},
		Budget:         budget,
		StopAtFirstBug: true,
	})
	t := &Table{
		Title:   "§5.4: soundness-verification cost (buggy Paxos from the live state)",
		Columns: []string{"metric", "measured", "paper"},
	}
	t.Addf("soundness invocations", res.Stats.SoundnessCalls, 773)
	t.Addf("avg time per invocation", res.Stats.AvgSoundnessCall().Round(time.Microsecond), "45 ms")
	t.Addf("event sequences checked", res.Stats.SequencesChecked, 427731)
	t.Addf("preliminary violations", res.Stats.PreliminaryViolations, "-")
	t.Addf("confirmed bugs", res.Stats.ConfirmedBugs, 1)
	t.Addf("cover-index hits", res.Stats.CoverIndexHits, "-")
	t.Addf("cover-index misses", res.Stats.CoverIndexMisses, "-")
	t.Addf("witness walks skipped (cache)", res.Stats.WitnessSkips, "-")
	t.Addf("elapsed", res.Stats.Elapsed.Round(time.Millisecond), "11 s")
	return t, nil
}

// PaxosBug regenerates §5.5: the crafted live state plus the checker run
// that rediscovers the WiDS bug, with the witness schedule.
func PaxosBug(budget time.Duration) (*Table, error) {
	m, live, err := buggyFromLive()
	if err != nil {
		return nil, err
	}
	res := core.Check(m, live, core.Options{
		Invariant:      paxos.Agreement(),
		Reduction:      paxos.Reduction{},
		Budget:         budget,
		StopAtFirstBug: true,
	})
	t := &Table{
		Title:   "§5.5: the Paxos last-response bug",
		Columns: []string{"field", "value"},
	}
	if len(res.Bugs) == 0 {
		t.Add("result", "NOT FOUND within budget")
		return t, nil
	}
	bug := res.Bugs[0]
	t.Add("violation", bug.Violation.Detail)
	t.Addf("witness events", len(bug.Schedule))
	t.Addf("elapsed", res.Stats.Elapsed.Round(time.Millisecond))
	t.Addf("soundness calls", res.Stats.SoundnessCalls)
	for i, ev := range bug.Schedule {
		t.Add(fmt.Sprintf("step %d", i+1), ev.String())
	}
	t.Notes = append(t.Notes, "paper: detected 11 s into the checker run seeded with this exact live state")
	return t, nil
}

// OnePaxosBug regenerates §5.6: the ++ initialization bug in 1Paxos.
func OnePaxosBug(budget time.Duration) (*Table, error) {
	m := onepaxos.New(3, onepaxos.PlusPlusBug, onepaxos.Driver{})
	live, err := onepaxos.PaperLiveState(m)
	if err != nil {
		return nil, err
	}
	res := core.Check(m, live, core.Options{
		Invariant:      onepaxos.Agreement(),
		Reduction:      onepaxos.Reduction{},
		Budget:         budget,
		StopAtFirstBug: true,
	})
	t := &Table{
		Title:   "§5.6: the 1Paxos ++ initialization bug",
		Columns: []string{"field", "value"},
	}
	if len(res.Bugs) == 0 {
		t.Add("result", "NOT FOUND within budget")
		return t, nil
	}
	bug := res.Bugs[0]
	t.Add("violation", bug.Violation.Detail)
	t.Addf("elapsed", res.Stats.Elapsed.Round(time.Microsecond))
	for i, ev := range bug.Schedule {
		t.Add(fmt.Sprintf("step %d", i+1), ev.String())
	}
	t.Notes = append(t.Notes,
		"paper: N1, still believing itself leader and (because of the ++ bug) acceptor, decides v1 alone",
		"the node-local separation invariant flags the same bug instantly: leader == acceptor in the initial state")
	return t, nil
}

// OnlinePaxos runs the full online §5.5 pipeline: live lossy deployment,
// periodic snapshots, checker restarts, detection time.
func OnlinePaxos(seed int64, checkerBudget time.Duration, maxSimTime float64) *Table {
	m := paxos.New(3, paxos.LastResponseBug, paxos.ActiveIndex{})
	live := sim.New(sim.Config{
		Machine:   m,
		Net:       simnet.Config{Seed: seed, DropProb: 0.3},
		Seed:      seed + 1,
		AppPeriod: 60,
		App:       paxos.LiveApp(m.P),
	})
	rep := online.Run(live, online.Config{
		Machine:    m,
		Interval:   60,
		MaxSimTime: maxSimTime,
		Checker: core.Options{
			Invariant:      paxos.Agreement(),
			Reduction:      paxos.Reduction{},
			StopAtFirstBug: true,
			Budget:         checkerBudget,
			LocalBoundStep: 1,
			MaxLocalBound:  3,
		},
		StopAtFirstBug: true,
	})
	t := &Table{
		Title:   "§5.5 online: periodic checker restarts over a live lossy Paxos deployment",
		Columns: []string{"field", "value"},
	}
	t.Addf("checker restarts", len(rep.Runs))
	t.Addf("simulated time covered", fmt.Sprintf("%.0f s", rep.SimTime))
	if rep.FirstBug == nil {
		t.Add("result", "no violation detected")
		return t
	}
	t.Addf("detected at simulated time", fmt.Sprintf("%.0f s (paper: 1150 s)", rep.DetectionSimTime))
	t.Addf("checker wall time to detection", rep.DetectionWall.Round(time.Millisecond))
	t.Add("violation", rep.FirstBug.Violation.Detail)
	return t
}

// TreePrimer regenerates the §2 primer numbers: the global state count of
// Figure 3 against the system-state count of Figure 4, including the
// invalid combination rejected by soundness verification.
func TreePrimer() *Table {
	m := tree.NewPaperTree()
	inv := m.CausalityInvariant()
	start := model.InitialSystem(m)
	g := global.Check(m, start, global.Options{Invariant: inv})
	l := core.Check(m, start, core.Options{Invariant: inv})
	t := &Table{
		Title:   "§2 primer: the 5-node tree",
		Columns: []string{"metric", "global", "local"},
		Notes: []string{
			"paper (Figures 3 and 4): 12 global states (with duplicates) vs 4 system states, one of them the invalid ----r",
		},
	}
	t.Addf("states", g.Stats.GlobalStates, l.Stats.NodeStates)
	t.Addf("system states created", "-", l.Stats.SystemStates)
	t.Addf("transitions", g.Stats.Transitions, l.Stats.Transitions)
	t.Addf("preliminary violations", g.Stats.PreliminaryViolations, l.Stats.PreliminaryViolations)
	t.Addf("confirmed bugs", len(g.Bugs), len(l.Bugs))
	return t
}

// ChainAblation regenerates ablation A1 (§4.3): on a serial chain the
// local approach buys nothing, while on the broadcast-heavy Paxos space it
// wins by orders of magnitude.
func ChainAblation(budget time.Duration) *Table {
	ch := chain.New(5)
	chStart := model.InitialSystem(ch)
	gChain := global.Check(ch, chStart, global.Options{Invariant: ch.Causality(), Budget: budget})
	lChain := core.Check(ch, chStart, core.Options{Invariant: ch.Causality(), Budget: budget})

	px := oneProposal()
	pxStart := model.InitialSystem(px)
	gPaxos := global.Check(px, pxStart, global.Options{Invariant: paxos.Agreement(), Budget: budget})
	lPaxos := core.Check(px, pxStart, core.Options{Invariant: paxos.Agreement(), Reduction: paxos.Reduction{}, Budget: budget})

	t := &Table{
		Title:   "A1 (§4.3): chain vs broadcast — where the local approach pays off",
		Columns: []string{"workload", "global transitions", "LMC transitions", "ratio"},
		Notes: []string{
			"\"we could not expect much from LMC in a chain system in which each node simply forwards the input message\"",
		},
	}
	t.Addf("chain (serial)", gChain.Stats.Transitions, lChain.Stats.Transitions,
		fmt.Sprintf("%.1fx", float64(gChain.Stats.Transitions)/float64(max(1, lChain.Stats.Transitions))))
	t.Addf("paxos (broadcast)", gPaxos.Stats.Transitions, lPaxos.Stats.Transitions,
		fmt.Sprintf("%.1fx", float64(gPaxos.Stats.Transitions)/float64(max(1, lPaxos.Stats.Transitions))))
	return t
}

// DupAblation regenerates ablation A2 (§4.2): the duplicate-message limit.
func DupAblation(budget time.Duration) *Table {
	m := oneProposal()
	start := model.InitialSystem(m)
	t := &Table{
		Title:   "A2 (§4.2): duplicate-message limit",
		Columns: []string{"dup limit", "node states", "transitions", "I+ dropped", "elapsed"},
		Notes: []string{
			"the paper sets the limit to zero for all reported results",
		},
	}
	for _, lim := range []int{0, 1, 2} {
		res := core.Check(m, start, core.Options{
			Invariant: paxos.Agreement(),
			Reduction: paxos.Reduction{},
			DupLimit:  lim,
			Budget:    budget,
		})
		t.Addf(lim, res.Stats.NodeStates, res.Stats.Transitions,
			res.Stats.DuplicatesDropped, res.Stats.Elapsed.Round(time.Millisecond))
	}
	return t
}

// AdapterAblation measures ablation A6: the cost of the actorcheck
// interception seam —
// the hand-written twophase model against the semantically identical
// actordemo implementation checked through the adapter, under both LMC-GEN
// and LMC-OPT. The state spaces are isomorphic by construction, so any
// elapsed-time difference is pure adapter overhead — snapshot/restore per
// handler execution plus canonical-blob fingerprinting.
func AdapterAblation(budget time.Duration) *Table {
	t := &Table{
		Title:   "A6: model vs real implementation through the actorcheck adapter",
		Columns: []string{"config", "node states", "transitions", "system states", "elapsed", "trans/sec", "overhead"},
		Notes: []string{
			"identical state spaces: the adapter explores the real code, not a transcription",
			"overhead = adapter elapsed / model elapsed for the same strategy",
		},
	}
	throughput := func(r *core.Result) string {
		s := r.Stats.Elapsed.Seconds()
		if s <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", float64(r.Stats.Transitions)/s)
	}
	for _, strat := range []string{"gen", "opt"} {
		mdl := twophase.New(4, twophase.MajorityBug, 2)
		mo := core.Options{Invariant: twophase.Atomicity(), Budget: budget}
		ad := actordemo.NewAdapter(4, actordemo.MajorityBug, 2)
		ao := core.Options{Invariant: actordemo.Atomicity(ad), Budget: budget}
		if strat == "opt" {
			mo.Reduction = twophase.Reduction{}
			ao.Reduction = actordemo.Reduction{Ad: ad}
		}
		mres := core.Check(mdl, model.InitialSystem(mdl), mo)
		ares := core.Check(ad, model.InitialSystem(ad), ao)
		overhead := "-"
		if mres.Stats.Elapsed > 0 {
			overhead = fmt.Sprintf("%.2fx", float64(ares.Stats.Elapsed)/float64(mres.Stats.Elapsed))
		}
		t.Addf("model/"+strat, mres.Stats.NodeStates, mres.Stats.Transitions,
			mres.Stats.SystemStates, mres.Stats.Elapsed.Round(time.Microsecond), throughput(mres), "1.00x")
		t.Addf("adapter/"+strat, ares.Stats.NodeStates, ares.Stats.Transitions,
			ares.Stats.SystemStates, ares.Stats.Elapsed.Round(time.Microsecond), throughput(ares), overhead)
	}
	return t
}

// ParallelAblation regenerates ablation A3 (§1): system-state checking
// fanned out across workers, on the GEN configuration whose Cartesian
// products dominate.
func ParallelAblation(budget time.Duration, workers []int) *Table {
	m := oneProposal()
	start := model.InitialSystem(m)
	t := &Table{
		Title:   "A3 (§1): parallel system-state checking (LMC-GEN)",
		Columns: []string{"workers", "system states", "elapsed"},
	}
	for _, w := range workers {
		res := core.Check(m, start, core.Options{
			Invariant: paxos.Agreement(),
			Workers:   w,
			Budget:    budget,
		})
		t.Addf(w, res.Stats.SystemStates, res.Stats.Elapsed.Round(time.Millisecond))
	}
	return t
}
