// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§5) — the elapsed-time, state-count and
// memory curves of Figures 10–12, the overhead breakdown of Figure 13, the
// transition-count and scalability comparisons, and the two online
// bug-finding experiments — plus the ablations DESIGN.md calls out. Both
// cmd/experiments and the root benchmark suite drive these entry points.
package bench

import (
	"fmt"
	"io"
	"strings"

	"lmc/internal/actordemo"
	"lmc/internal/model"
	"lmc/internal/protocols/chain"
	"lmc/internal/protocols/onepaxos"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/randtree"
	"lmc/internal/protocols/tree"
	"lmc/internal/protocols/twophase"
	"lmc/internal/spec"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Addf appends a row formatting each value with %v.
func (t *Table) Addf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		cells[i] = fmt.Sprintf("%v", v)
	}
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Workload bundles a machine with everything a checker needs to run it.
type Workload struct {
	Name        string
	Description string
	Machine     model.Machine
	Invariant   spec.Invariant
	Reduction   spec.Reduction
	Locals      []spec.LocalInvariant
	// Start builds the start system state; nil means the initial state.
	Start func() (model.SystemState, error)
}

// StartState resolves the workload's start system state.
func (w Workload) StartState() (model.SystemState, error) {
	if w.Start != nil {
		return w.Start()
	}
	return model.InitialSystem(w.Machine), nil
}

// Workloads returns the registry of named workloads available to cmd/lmc
// and the experiments.
func Workloads() []Workload {
	paxosCorrect := paxos.New(3, paxos.NoBug, paxos.OnceAt{Node: 0, Index: 0, Value: 7})
	paxosBug := paxos.New(3, paxos.LastResponseBug, paxos.ActiveIndex{MaxPerNode: 1})
	paxosTwo := paxos.New(3, paxos.NoBug, paxos.EachOnce{Nodes: []model.NodeID{0, 1}, Index: 0})
	onepaxosBug := onepaxos.New(3, onepaxos.PlusPlusBug, onepaxos.Driver{})
	onepaxosOK := onepaxos.New(3, onepaxos.NoBug, onepaxos.Driver{})
	treeM := tree.NewPaperTree()
	chainM := chain.New(5)
	rtOK := randtree.New(5, 2, randtree.NoBug)
	rtBug := randtree.New(5, 2, randtree.SelfSiblingBug)
	tpOK := twophase.New(4, twophase.NoBug, 2)
	tpBug := twophase.New(4, twophase.MajorityBug, 2)
	actOK := actordemo.NewAdapter(4, actordemo.NoBug, 2)
	actBug := actordemo.NewAdapter(4, actordemo.MajorityBug, 2)

	return []Workload{
		{
			Name:        "paxos",
			Description: "correct Paxos, 3 nodes, one proposal (the §5.1 benchmark space)",
			Machine:     paxosCorrect,
			Invariant:   paxos.Agreement(),
			Reduction:   paxos.Reduction{},
		},
		{
			Name:        "paxos-bug",
			Description: "Paxos with the §5.5 last-response value bug, from the paper's live state",
			Machine:     paxosBug,
			Invariant:   paxos.Agreement(),
			Reduction:   paxos.Reduction{},
			Start:       func() (model.SystemState, error) { return paxos.PaperLiveState(paxosBug) },
		},
		{
			Name:        "paxos-two",
			Description: "correct Paxos, two competing proposals (the §5.2 scalability space)",
			Machine:     paxosTwo,
			Invariant:   paxos.Agreement(),
			Reduction:   paxos.Reduction{},
		},
		{
			Name:        "1paxos",
			Description: "correct 1Paxos over PaxosUtility, from the §5.6 live state",
			Machine:     onepaxosOK,
			Invariant:   onepaxos.Agreement(),
			Reduction:   onepaxos.Reduction{},
			Start:       func() (model.SystemState, error) { return onepaxos.PaperLiveState(onepaxosOK) },
		},
		{
			Name:        "1paxos-bug",
			Description: "1Paxos with the §5.6 ++ initialization bug, from the paper's live state",
			Machine:     onepaxosBug,
			Invariant:   onepaxos.Agreement(),
			Reduction:   onepaxos.Reduction{},
			Locals:      []spec.LocalInvariant{onepaxos.Separation()},
			Start:       func() (model.SystemState, error) { return onepaxos.PaperLiveState(onepaxosBug) },
		},
		{
			Name:        "tree",
			Description: "the §2 primer: 5-node tree forwarding",
			Machine:     treeM,
			Invariant:   treeM.CausalityInvariant(),
		},
		{
			Name:        "chain",
			Description: "serial token chain — the protocol LMC cannot help (§4.3)",
			Machine:     chainM,
			Invariant:   chainM.Causality(),
		},
		{
			Name:        "randtree",
			Description: "RandTree-style overlay with the disjoint children/siblings local invariant (§4)",
			Machine:     rtOK,
			Locals:      []spec.LocalInvariant{randtree.Structure()},
		},
		{
			Name:        "randtree-bug",
			Description: "RandTree overlay with the self-sibling off-by-one bug",
			Machine:     rtBug,
			Locals:      []spec.LocalInvariant{randtree.Structure()},
		},
		{
			Name:        "twophase",
			Description: "two-phase commit, 4 nodes, one scripted no-voter",
			Machine:     tpOK,
			Invariant:   twophase.Atomicity(),
			Reduction:   twophase.Reduction{},
		},
		{
			Name:        "twophase-bug",
			Description: "two-phase commit deciding on a majority instead of unanimity",
			Machine:     tpBug,
			Invariant:   twophase.Atomicity(),
			Reduction:   twophase.Reduction{},
		},
		{
			Name:        "actor-2pc",
			Description: "real actor-style 2PC implementation checked through the actorcheck adapter",
			Machine:     actOK,
			Invariant:   actordemo.Atomicity(actOK),
			Reduction:   actordemo.Reduction{Ad: actOK},
		},
		{
			Name:        "actor-2pc-bug",
			Description: "actor-style 2PC with the majority bug, found through the interception seam",
			Machine:     actBug,
			Invariant:   actordemo.Atomicity(actBug),
			Reduction:   actordemo.Reduction{Ad: actBug},
		},
	}
}

// Lookup finds a workload by name.
func Lookup(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	var names []string
	for _, w := range Workloads() {
		names = append(names, w.Name)
	}
	return Workload{}, fmt.Errorf("unknown workload %q (have: %s)", name, strings.Join(names, ", "))
}
