package bench

import (
	"fmt"
	"strings"

	"lmc/internal/shard"
)

// shardSpecPrefix namespaces the workload registry inside the shard-worker
// spec space: "bench:<name>" resolves through Lookup.
const shardSpecPrefix = "bench:"

// ShardSpec builds the spec string a coordinator passes to shard.Check for
// a registry workload.
func ShardSpec(name string) string { return shardSpecPrefix + name }

// ShardResolver resolves "bench:<name>" specs against the workload
// registry. The machine, start state, and system-wide invariant travel —
// the invariant so the coordinator can shard the system-state sweeps across
// the fleet. Reductions, local invariants, and budgets are deliberately
// dropped: a shard worker runs the stripped replica engine.
func ShardResolver() shard.Resolver {
	return func(spec string) (shard.Workload, error) {
		name, ok := strings.CutPrefix(spec, shardSpecPrefix)
		if !ok {
			return shard.Workload{}, fmt.Errorf("bench resolver: unknown spec %q", spec)
		}
		w, err := Lookup(name)
		if err != nil {
			return shard.Workload{}, err
		}
		start, err := w.StartState()
		if err != nil {
			return shard.Workload{}, err
		}
		return shard.Workload{Machine: w.Machine, Start: start, Invariant: w.Invariant}, nil
	}
}
