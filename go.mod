module lmc

go 1.22
