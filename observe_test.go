package lmc_test

import (
	"context"
	"fmt"
	"testing"

	"lmc"
	"lmc/internal/codec"
)

// ringState is a two-node token ring used as the observability example: a
// token starts at node 0 and is forwarded around the ring until its hop
// counter reaches ringMaxHops. The state space is tiny and the round
// structure fixed, so the emitted event stream is a stable golden.
const ringMaxHops = 3

type ringState struct {
	Started bool
	Tokens  int // tokens this node has held
}

func (s *ringState) Encode(w *codec.Writer) {
	w.Bool(s.Started)
	w.Int(s.Tokens)
}
func (s *ringState) Clone() lmc.State { c := *s; return &c }
func (s *ringState) String() string   { return fmt.Sprintf("tokens=%d", s.Tokens) }

type ringToken struct {
	From, To lmc.NodeID
	Hop      int
}

func (m ringToken) Src() lmc.NodeID { return m.From }
func (m ringToken) Dst() lmc.NodeID { return m.To }
func (m ringToken) Encode(w *codec.Writer) {
	w.Int(int(m.From))
	w.Int(int(m.To))
	w.Int(m.Hop)
}
func (m ringToken) String() string {
	return fmt.Sprintf("token{%v->%v hop=%d}", m.From, m.To, m.Hop)
}

type ringStart struct{ On lmc.NodeID }

func (a ringStart) Node() lmc.NodeID       { return a.On }
func (a ringStart) Encode(w *codec.Writer) { w.String("start"); w.Int(int(a.On)) }
func (a ringStart) String() string         { return "Start{}" }

type ringMachine struct{}

func (ringMachine) Name() string              { return "ring2" }
func (ringMachine) NumNodes() int             { return 2 }
func (ringMachine) Init(lmc.NodeID) lmc.State { return &ringState{} }

func (ringMachine) Actions(n lmc.NodeID, s lmc.State) []lmc.Action {
	if n == 0 && !s.(*ringState).Started {
		return []lmc.Action{ringStart{On: 0}}
	}
	return nil
}

func (ringMachine) HandleAction(n lmc.NodeID, s lmc.State, a lmc.Action) (lmc.State, []lmc.Message) {
	st := s.(*ringState)
	st.Started = true
	st.Tokens++
	return st, []lmc.Message{ringToken{From: 0, To: 1, Hop: 1}}
}

func (ringMachine) HandleMessage(n lmc.NodeID, s lmc.State, m lmc.Message) (lmc.State, []lmc.Message) {
	st := s.(*ringState)
	tok := m.(ringToken)
	st.Tokens++
	if tok.Hop >= ringMaxHops {
		return st, nil
	}
	return st, []lmc.Message{ringToken{From: n, To: 1 - n, Hop: tok.Hop + 1}}
}

func ringInvariant() lmc.Invariant {
	return lmc.InvariantFunc{
		InvName: "token-conservation",
		Fn: func(ss lmc.SystemState) *lmc.Violation {
			// Total token holds can never exceed the ring's hop budget + 1.
			total := 0
			for _, s := range ss {
				total += s.(*ringState).Tokens
			}
			if total > ringMaxHops+1 {
				return &lmc.Violation{Invariant: "token-conservation", Detail: "over budget"}
			}
			return nil
		},
	}
}

// eventTag renders the deterministic coordinates of a run event; wall-clock
// fields (Elapsed, Phases, HeapBytes, Counters timings) are excluded.
func eventTag(e lmc.RunEvent) string {
	switch e.Kind {
	case lmc.KindRunEnd:
		return fmt.Sprintf("%v reason=%v depth=%d", e.Kind, e.Reason, e.Depth)
	case lmc.KindRoundEnd:
		return fmt.Sprintf("%v p%d.r%d depth=%d states=%d", e.Kind, e.Pass, e.Round, e.Depth, e.Count)
	case lmc.KindSystemStates, lmc.KindSoundness, lmc.KindPrelimViolations:
		return fmt.Sprintf("%v p%d.r%d count=%d", e.Kind, e.Pass, e.Round, e.Count)
	case lmc.KindViolation:
		return fmt.Sprintf("%v %s depth=%d", e.Kind, e.Invariant, e.Depth)
	case lmc.KindPassStart:
		return fmt.Sprintf("%v p%d bound=%d", e.Kind, e.Pass, e.LocalBound)
	default:
		return fmt.Sprintf("%v p%d.r%d", e.Kind, e.Pass, e.Round)
	}
}

// TestObserverGoldenRing pins the exact event stream a checked two-node
// ring emits: the golden below is the barrier-buffered emission contract
// (round start, batched system-state deltas, round end) and must be
// identical for any Workers setting.
func TestObserverGoldenRing(t *testing.T) {
	golden := []string{
		"run-start p0.r0",
		"pass-start p1 bound=1",
		"round-start p1.r1",
		"system-states p1.r1 count=4",
		"round-end p1.r1 depth=2 states=4",
		"round-start p1.r2",
		"system-states p1.r2 count=4",
		"round-end p1.r2 depth=3 states=6",
		"round-start p1.r3",
		"system-states p1.r3 count=4",
		"round-end p1.r3 depth=4 states=7",
		"round-start p1.r4",
		"round-end p1.r4 depth=4 states=7",
		"round-start p1.r5",
		"round-end p1.r5 depth=4 states=7",
		"run-end reason=fixpoint depth=4",
	}
	for _, workers := range []int{1, 4} {
		rec := &lmc.EventRecorder{}
		res := lmc.Check(ringMachine{}, lmc.InitialSystem(ringMachine{}), lmc.Options{
			Invariant:      ringInvariant(),
			Observer:       rec,
			HeartbeatEvery: -1, // heartbeats are wall-clock gated: not golden material
			Workers:        workers,
		})
		if !res.Complete || len(res.Bugs) != 0 {
			t.Fatalf("workers=%d: ring run complete=%v bugs=%d", workers, res.Complete, len(res.Bugs))
		}
		events := rec.Events()
		var got []string
		for _, e := range events {
			got = append(got, eventTag(e))
		}
		if len(got) != len(golden) {
			t.Fatalf("workers=%d: %d events, want %d:\n%s", workers, len(got), len(golden), join(got))
		}
		for i := range golden {
			if got[i] != golden[i] {
				t.Fatalf("workers=%d: event %d = %q, want %q\nfull stream:\n%s",
					workers, i, got[i], golden[i], join(got))
			}
		}
	}
}

func join(ss []string) string {
	out := ""
	for _, s := range ss {
		out += "  " + s + "\n"
	}
	return out
}

// TestContextAPIs exercises the context-aware facade: validation errors,
// cancellation, and the legacy wrappers' equivalence.
func TestContextAPIs(t *testing.T) {
	m := ringMachine{}
	start := lmc.InitialSystem(m)

	if _, err := lmc.CheckContext(context.Background(), m, start, lmc.Options{}); err == nil {
		t.Fatal("CheckContext accepted an invariant-free configuration")
	}
	if _, err := lmc.GlobalContext(context.Background(), m, start, lmc.GlobalOptions{}); err == nil {
		t.Fatal("GlobalContext accepted an invariant-free configuration")
	}

	res, err := lmc.CheckContext(context.Background(), m, start, lmc.Options{Invariant: ringInvariant()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.StopReason != lmc.StopFixpoint {
		t.Fatalf("complete=%v reason=%v", res.Complete, res.StopReason)
	}

	g, err := lmc.GlobalContext(context.Background(), m, start, lmc.GlobalOptions{Invariant: ringInvariant()})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Complete || g.StopReason != lmc.StopFixpoint {
		t.Fatalf("global: complete=%v reason=%v", g.Complete, g.StopReason)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	gc, err := lmc.GlobalContext(cancelled, m, start, lmc.GlobalOptions{Invariant: ringInvariant()})
	if err != nil {
		t.Fatal(err)
	}
	if gc.Complete || gc.StopReason != lmc.StopCancelled {
		t.Fatalf("cancelled global: complete=%v reason=%v", gc.Complete, gc.StopReason)
	}
}
