package lmc_test

import (
	"testing"
	"time"

	"lmc"
	"lmc/internal/protocols/paxos"
	"lmc/internal/protocols/tree"
)

// TestFacadeLocalChecker exercises the public entry points end to end.
func TestFacadeLocalChecker(t *testing.T) {
	m := tree.NewPaperTree()
	start := lmc.InitialSystem(m)
	res := lmc.Check(m, start, lmc.Options{Invariant: m.CausalityInvariant()})
	if !res.Complete || len(res.Bugs) != 0 {
		t.Fatalf("unexpected: %+v", res.Stats)
	}
	g := lmc.Global(m, start, lmc.GlobalOptions{Invariant: m.CausalityInvariant()})
	if !g.Complete || len(g.Bugs) != 0 {
		t.Fatalf("unexpected: %+v", g.Stats)
	}
}

// TestFacadeReplay round-trips a witness through the public Replay.
func TestFacadeReplay(t *testing.T) {
	m := tree.NewPaperTree()
	start := lmc.InitialSystem(m)
	sc := lmc.Schedule{
		lmc.Event{Kind: 2, Node: 0, Act: tree.Initiate{Root: 0}},
	}
	if err := lmc.Replay(m, start, sc); err != nil {
		t.Fatalf("replay: %v", err)
	}
	bad := lmc.Schedule{
		lmc.Event{Kind: 1, Node: 4, Msg: tree.Forward{From: 1, To: 4}},
	}
	if err := lmc.Replay(m, start, bad); err == nil {
		t.Fatal("invalid schedule accepted")
	}
}

// TestFacadeOnline runs a short online session through the facade.
func TestFacadeOnline(t *testing.T) {
	m := paxos.New(3, paxos.NoBug, paxos.ActiveIndex{})
	live := lmc.NewSim(lmc.SimConfig{
		Machine:   m,
		Net:       lmc.NetConfig{Seed: 3, DropProb: 0.3},
		Seed:      4,
		AppPeriod: 30,
		App:       paxos.LiveApp(m.P),
	})
	rep := lmc.Online(live, lmc.OnlineConfig{
		Machine:    m,
		Interval:   60,
		MaxSimTime: 300,
		Checker: lmc.Options{
			Invariant: paxos.Agreement(),
			Reduction: paxos.Reduction{},
			Budget:    500 * time.Millisecond,
		},
	})
	if len(rep.Runs) != 5 {
		t.Fatalf("expected 5 checker restarts, got %d", len(rep.Runs))
	}
	if rep.FirstBug != nil {
		t.Fatalf("correct Paxos flagged online: %v", rep.FirstBug.Violation)
	}
}
