// Package lmc is a Go implementation of local model checking (LMC) for
// distributed systems, reproducing "Model Checking a Networked System
// Without the Network" (Guerraoui & Yabandeh, NSDI 2011).
//
// Classic model checkers for distributed systems explore global states —
// the node local states plus every in-flight message — and drown in the
// state explosion the network causes. LMC removes the network from the
// checker's state a priori: each node's local state space is explored
// independently against a single shared, monotonically growing network
// object; system states (the tuples invariants are specified on) are only
// materialized temporarily, by combining visited node states; and because
// such a combination may be impossible in a real run, every preliminary
// invariant violation is confirmed a posteriori by a soundness-verification
// phase that searches for a realizable schedule — which doubles as the
// counterexample handed to the user.
//
// # Defining a protocol
//
// A protocol implements Machine: deterministic message and internal-action
// handlers over states that encode canonically (see the codec
// fingerprinting contract on State). The packages under
// internal/protocols — Paxos, 1Paxos, two-phase commit, tree and chain
// forwarding, a RandTree-style overlay — are complete worked examples.
//
// # Checking
//
// Submit is the entry point: one job-oriented API over all three checkers
// (local, global baseline, online session), with cancellation, polling and
// checkpoint progress on the returned Handle.
//
//	h, err := lmc.Submit(ctx, lmc.JobSpec{
//	    Machine: machine,
//	    Options: lmc.NewOptions(lmc.WithInvariant(myInvariant)),
//	})
//	if err != nil { ... }
//	res, err := h.Wait(ctx)
//	for _, bug := range res.Local.Bugs {
//	    fmt.Println(bug.Violation, bug.Schedule)
//	}
//
// Supplying a Reduction turns on LMC-OPT, the invariant-specific
// system-state creation of the paper's §4.2. JobGlobal runs the classic
// bounded-DFS baseline for comparison. NewSim and JobOnline reproduce the
// paper's online checking scheme: a live (simulated, lossy) deployment
// snapshotted periodically, with the checker restarted from each snapshot.
// The older per-checker entry points (Check, Global, Online and their
// Context forms) remain as thin wrappers.
//
// # Options: fields and functional options
//
// Options is a plain struct; NewOptions builds one from functional
// options. The two styles are exactly equivalent — every WithX helper sets
// the Options field of the same name (WithInvariant ↔ Options.Invariant,
// WithWorkers ↔ Options.Workers, WithReduce ↔ Options.Reduce, WithShards ↔
// Options.Shards, WithObserver ↔ Options.Observer, and so on) — so a
// NewOptions result can be further adjusted by field assignment and a
// struct literal can be passed anywhere an Opt-built value can.
//
// # Durability
//
// Long runs can checkpoint at every round barrier (Options.Checkpoint) and
// later resume bit-for-bit (Options.Resume): the resumed run replays
// exploration with the stored delivery records primed into its canonical
// walk, so its Result — bugs, schedules, every deterministic counter — is
// identical to the uninterrupted run's. internal/store persists
// checkpoints in a single append-only file and survives SIGKILL mid-write;
// cmd/lmc's serve mode runs a resident checking service on top of it.
package lmc

import (
	"context"
	"log/slog"

	"lmc/internal/core"
	"lmc/internal/mc/global"
	"lmc/internal/model"
	"lmc/internal/obs"
	"lmc/internal/online"
	"lmc/internal/sim"
	"lmc/internal/simnet"
	"lmc/internal/spec"
	"lmc/internal/stats"
	"lmc/internal/trace"
)

// Core model vocabulary (see internal/model for the full contracts).
type (
	// NodeID identifies a node; nodes are numbered 0..N-1.
	NodeID = model.NodeID
	// Message is a network message in flight.
	Message = model.Message
	// Action is a node-local event (timer, application call).
	Action = model.Action
	// State is one node's local state.
	State = model.State
	// Machine is a protocol definition: the handlers of the paper's Fig. 5.
	Machine = model.Machine
	// SystemState is the tuple of node local states invariants see.
	SystemState = model.SystemState
	// Event is one transition: a message delivery or an internal action.
	Event = model.Event
)

// Specification vocabulary (see internal/spec).
type (
	// Invariant is a safety property over system states.
	Invariant = spec.Invariant
	// InvariantFunc adapts a function to Invariant.
	InvariantFunc = spec.InvariantFunc
	// LocalInvariant is a per-node-state property.
	LocalInvariant = spec.LocalInvariant
	// Violation describes a failed invariant.
	Violation = spec.Violation
	// Reduction enables LMC-OPT's invariant-specific system-state creation.
	Reduction = spec.Reduction
	// Interest is a reduction's projection of a node state.
	Interest = spec.Interest
)

// Checker configuration and results (see internal/core and
// internal/mc/global).
type (
	// Options configures the local checker.
	Options = core.Options
	// Reductions selects the optional state-space reductions
	// (Options.Reduce): symmetry canonicalization over the protocol's
	// declared interchangeable roles, and partial-order pruning of
	// commuting deliveries in the soundness search. Both preserve
	// verdicts; the default zero value disables both.
	Reductions = core.Reductions
	// Result reports a local checker run.
	Result = core.Result
	// Bug is a confirmed violation with its realizing schedule.
	Bug = core.Bug
	// GlobalOptions configures the global baseline checker.
	GlobalOptions = global.Options
	// GlobalResult reports a global checker run.
	GlobalResult = global.Result
	// Counters are the statistics both checkers report.
	Counters = stats.Counters
	// Schedule is a totally ordered event sequence (a counterexample).
	Schedule = trace.Schedule
)

// Checkpoint/resume vocabulary (see internal/core/checkpoint.go and
// internal/store). A run with Options.Checkpoint set hands one
// RoundCheckpoint to the sink per completed round barrier; a run with
// Options.Resume set replays a previous run's rounds bit-for-bit.
type (
	// RoundCheckpoint is one completed exploration round: delivery
	// records, new-state fingerprints, a replica digest, counters.
	RoundCheckpoint = core.RoundCheckpoint
	// CheckpointSink receives round checkpoints (internal/store's
	// Store.Sink returns one).
	CheckpointSink = core.CheckpointSink
	// ResumeSource replays a previous run's stored rounds
	// (internal/store's Store.Resume returns one).
	ResumeSource = core.ResumeSource
	// DeliveryRecord is one recorded delivery-pair execution, the
	// fingerprint-only hint both sharding and checkpointing exchange.
	DeliveryRecord = core.DeliveryRecord
)

// Run-event observability (see internal/obs). Both checkers and the online
// driver emit typed events into Options.Observer: run and pass boundaries,
// per-round progress, system-state and soundness batches, violations, and
// periodic heartbeats carrying the live Counters plus heap growth. The
// local checker buffers events per round and flushes them at the
// sequential merge barrier, so an observer never runs on the parallel
// workers' hot path and results stay bit-for-bit identical for every
// Workers setting. RunEvent is the event type ("Event" already names a
// transition in the model vocabulary above).
type (
	// Observer receives run events; implementations must be cheap or
	// offload their own work.
	Observer = obs.Observer
	// RunEvent is one observability event.
	RunEvent = obs.Event
	// RunEventKind discriminates RunEvent payloads.
	RunEventKind = obs.Kind
	// FuncObserver adapts a function to Observer.
	FuncObserver = obs.FuncObserver
	// StopReason says why a checker run ended.
	StopReason = obs.StopReason
	// PhaseTimes attributes a run's wall time to its phases.
	PhaseTimes = obs.PhaseTimes
	// EventRecorder collects every event, for tests and analysis.
	EventRecorder = obs.Recorder
)

// RunEvent kinds.
const (
	KindRunStart         = obs.KindRunStart
	KindPassStart        = obs.KindPassStart
	KindRoundStart       = obs.KindRoundStart
	KindRoundEnd         = obs.KindRoundEnd
	KindSystemStates     = obs.KindSystemStates
	KindSoundness        = obs.KindSoundness
	KindPrelimViolations = obs.KindPrelimViolations
	KindViolation        = obs.KindViolation
	KindHeartbeat        = obs.KindHeartbeat
	KindSnapshot         = obs.KindSnapshot
	KindRunEnd           = obs.KindRunEnd
	KindCheckpoint       = obs.KindCheckpoint
	KindResume           = obs.KindResume
)

// StopReason values.
const (
	// StopFixpoint: the exploration reached its natural end (LMC fixpoint,
	// or the global search exhausted its bounded space).
	StopFixpoint = obs.StopFixpoint
	// StopBudget: the wall-time budget expired.
	StopBudget = obs.StopBudget
	// StopTransitions: the transition cap was reached.
	StopTransitions = obs.StopTransitions
	// StopCancelled: the run context was cancelled.
	StopCancelled = obs.StopCancelled
	// StopFirstBug: StopAtFirstBug ended the run at a confirmed bug.
	StopFirstBug = obs.StopFirstBug
	// StopResumeDiverged: a resumed run's post-round digest disagreed with
	// the stored checkpoint (stale or corrupted checkpoint data).
	StopResumeDiverged = obs.StopResumeDiverged
)

// NewLogObserver returns an Observer that logs run milestones through
// log/slog at Info and per-round detail at Debug; nil means slog.Default().
func NewLogObserver(l *slog.Logger) Observer { return obs.NewLogObserver(l) }

// NewExpvarObserver returns an Observer publishing live counters under the
// named expvar map, served on /debug/vars by any process that imports
// expvar's HTTP handler (net/http/pprof pulls it in). The same name always
// yields the same underlying map.
func NewExpvarObserver(name string) Observer { return obs.NewExpvarObserver(name) }

// Online checking and live simulation (see internal/online, internal/sim).
type (
	// Sim is a discrete-event live run of a protocol over a lossy network.
	Sim = sim.Sim
	// SimConfig parameterizes a live run.
	SimConfig = sim.Config
	// NetConfig parameterizes the lossy network.
	NetConfig = simnet.Config
	// OnlineConfig parameterizes an online checking session.
	OnlineConfig = online.Config
	// OnlineReport summarizes an online checking session.
	OnlineReport = online.Report
)

// Strategy values for the global checker.
const (
	// DFS is the paper's B-DFS baseline search order.
	DFS = global.DFS
	// BFS explores breadth-first, yielding per-depth series in one run.
	BFS = global.BFS
)

// Check runs the local model checker (LMC) on machine m from the given
// start system state. Set Options.Reduction for LMC-OPT. It is
// CheckContext with a background context, panicking on invalid options.
//
// Deprecated: use Submit with a JobLocal JobSpec (or CheckContext when an
// error return is preferred over a panic).
func Check(m Machine, start SystemState, opt Options) *Result {
	res, err := CheckContext(context.Background(), m, start, opt)
	if err != nil {
		panic(err)
	}
	return res
}

// CheckContext is Check with option validation (Options.Validate) and
// cooperative cancellation. Cancellation is honored at round barriers —
// after the round's buffered run events are flushed — so a run cancelled
// from an Observer hook stops at the same round for every Workers setting.
// A cancelled run is not an error: it returns the partial Result with
// Complete=false and StopReason=StopCancelled.
//
// Deprecated: use Submit with a JobLocal JobSpec.
func CheckContext(ctx context.Context, m Machine, start SystemState, opt Options) (*Result, error) {
	return core.CheckContext(ctx, m, start, opt)
}

// Global runs the classic global-state model checker (B-DFS by default),
// the baseline the paper compares against. It is GlobalContext with a
// background context, panicking on invalid options.
//
// Deprecated: use Submit with a JobGlobal JobSpec (or GlobalContext when
// an error return is preferred over a panic).
func Global(m Machine, start SystemState, opt GlobalOptions) *GlobalResult {
	res, err := GlobalContext(context.Background(), m, start, opt)
	if err != nil {
		panic(err)
	}
	return res
}

// GlobalContext is Global with option validation surfaced as an error and
// cooperative cancellation, polled once per worklist iteration. A
// cancelled search returns the partial GlobalResult with Complete=false
// and StopReason=StopCancelled.
//
// Deprecated: use Submit with a JobGlobal JobSpec.
func GlobalContext(ctx context.Context, m Machine, start SystemState, opt GlobalOptions) (*GlobalResult, error) {
	return global.CheckContext(ctx, m, start, opt)
}

// InitialSystem builds the system state of every node's initial state.
func InitialSystem(m Machine) SystemState { return model.InitialSystem(m) }

// ParseReductions parses a CLI-style reduction spec — a comma-separated
// subset of "sym" and "por", or "all" / "none" / "" — into a Reductions
// value, mirroring the -reduce flag of cmd/lmc and cmd/benchjson.
func ParseReductions(spec string) (Reductions, error) {
	return core.ParseReductions(spec)
}

// Replay re-executes a schedule from a start state against the real
// handlers and a real message-consuming network; it is the ground truth
// for counterexamples.
func Replay(m Machine, start SystemState, sc Schedule) error {
	return trace.Replay(m, start, sc).Err
}

// NewSim builds a live discrete-event run.
func NewSim(cfg SimConfig) *Sim { return sim.New(cfg) }

// Online snapshots a live run periodically and restarts the local checker
// from each snapshot (the paper's online model checking scheme, §3.3). It
// is OnlineContext with a background context, panicking on an invalid
// config.
//
// Deprecated: use Submit with a JobOnline JobSpec (or OnlineContext when
// an error return is preferred over a panic).
func Online(live *Sim, cfg OnlineConfig) *OnlineReport {
	rep, err := OnlineContext(context.Background(), live, cfg)
	if err != nil {
		panic(err)
	}
	return rep
}

// OnlineContext is Online with config validation (OnlineConfig.Validate)
// surfaced as an error and cooperative cancellation: the context cuts the
// current checker restart off at its next round barrier and stops the
// session. Each restart is announced to cfg.Checker.Observer with a
// KindSnapshot event.
//
// Deprecated: use Submit with a JobOnline JobSpec.
func OnlineContext(ctx context.Context, live *Sim, cfg OnlineConfig) (*OnlineReport, error) {
	return online.RunContext(ctx, live, cfg)
}
