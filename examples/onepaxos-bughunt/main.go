// 1Paxos bughunt: the paper's §5.6 experiment. 1Paxos is a Multi-Paxos
// variant with a single active acceptor; leader and acceptor identities
// live in a separate consensus service (PaxosUtility), here implemented
// with the Paxos package itself as a lower-layer module. The injected bug
// is the paper's newly found one: the initialization function computed
// `acceptor = *(members.begin()++)`, so every node's cached acceptor
// variable points at the first member — the leader itself.
//
// Starting from the live state where N3 has taken over leadership (with
// acceptor N2) and everyone but N1 chose value 3, the checker finds the
// three-step disaster: N1, still believing it is the leader, proposes to
// its mis-initialized acceptor — itself — accepts, and learns its own
// value. The node-local separation invariant ("leader and acceptor must be
// distinct") flags the same bug in the very first state.
package main

import (
	"fmt"
	"log"
	"time"

	"lmc"
	"lmc/internal/protocols/onepaxos"
)

func main() {
	m := onepaxos.New(3, onepaxos.PlusPlusBug, onepaxos.Driver{})
	live, err := onepaxos.PaperLiveState(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("live state at the snapshot (§5.6):")
	for n, s := range live {
		fmt.Printf("  N%d: %s\n", n+1, s.String())
	}
	fmt.Println()

	res := lmc.Check(m, live, lmc.Options{
		Invariant:      onepaxos.Agreement(),
		Reduction:      onepaxos.Reduction{},
		StopAtFirstBug: true,
		Budget:         60 * time.Second,
	})
	if len(res.Bugs) == 0 {
		log.Fatalf("bug not found: %s", res.Stats.String())
	}
	bug := res.Bugs[0]
	fmt.Printf("agreement violation found in %v:\n  %v\n",
		res.Stats.Elapsed.Round(time.Microsecond), bug.Violation)
	fmt.Println("witness schedule:")
	fmt.Print(bug.Schedule.String())
	fmt.Println()

	// The separation property catches the root cause without any search.
	sep := onepaxos.Separation()
	if msg := sep.CheckNode(0, m.Init(0)); msg != "" {
		fmt.Printf("local invariant %q on the initial state: %s\n", sep.Name(), msg)
		fmt.Println("(the ++ bug is visible before a single message is exchanged)")
	}
}
