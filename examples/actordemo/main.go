// Checking a real implementation: the actorcheck adapter wraps an
// actor-style Go program — a mailbox handler loop that was NOT written
// against the model.Machine interface — and lets the local checker explore
// its real handler code against the shared network I+.
//
// The walkthrough: build the buggy register (a 2PC coordinator that
// wrongly commits on a majority), find the atomicity violation with both
// LMC-GEN and LMC-OPT, re-drive the witness schedule through the
// UNINSTRUMENTED implementation to prove the bug is in the code and not in
// the interception seam, and finally emit the witness as a committed-style
// JSON repro artifact.
package main

import (
	"fmt"
	"os"

	"lmc"
	"lmc/internal/actordemo"
)

func main() {
	// Four nodes: node 0 coordinates, node 2 is scripted to refuse. With
	// MajorityBug the coordinator commits on 3 of 4 votes, so the refuser
	// aborts while the rest commit — an atomicity violation.
	ad := actordemo.NewAdapter(4, actordemo.MajorityBug, 2)
	inv := actordemo.Atomicity(ad)
	start := lmc.InitialSystem(ad)

	fmt.Println("A real actor-style 2PC implementation, checked through the")
	fmt.Println("actorcheck adapter. Node 2 refuses; the buggy coordinator")
	fmt.Println("commits on a majority anyway.")
	fmt.Println()

	gen := lmc.Check(ad, start, lmc.Options{Invariant: inv, SoundnessShare: -1})
	fmt.Printf("LMC-GEN: %d node states, %d transitions, %d confirmed bug(s)\n",
		gen.Stats.NodeStates, gen.Stats.Transitions, gen.Stats.ConfirmedBugs)

	opt := lmc.Check(ad, start, lmc.Options{
		Invariant: inv, Reduction: actordemo.Reduction{Ad: ad}, SoundnessShare: -1})
	fmt.Printf("LMC-OPT: %d node states, %d transitions, %d confirmed bug(s)\n",
		opt.Stats.NodeStates, opt.Stats.Transitions, opt.Stats.ConfirmedBugs)

	if len(gen.Bugs) == 0 || len(opt.Bugs) == 0 {
		fmt.Println("expected both strategies to confirm the bug")
		os.Exit(1)
	}
	bug := gen.Bugs[0]
	fmt.Println()
	fmt.Printf("witness (%d events) for %q:\n", len(bug.Schedule), bug.Violation.Invariant)
	fmt.Print(bug.Schedule.String())

	// The decisive step: replay the witness on the raw implementation with
	// no interception, memoization or snapshotting in the loop. Reaching
	// the same final state proves the bug lives in the actor's code.
	final, err := ad.ReplayRaw(start, nil, bug.Schedule)
	if err != nil {
		fmt.Println("uninstrumented replay failed:", err)
		os.Exit(1)
	}
	if final.Fingerprint() != bug.System.Fingerprint() {
		fmt.Println("uninstrumented replay diverged from the witness state")
		os.Exit(1)
	}
	if v := inv.Check(final); v == nil {
		fmt.Println("uninstrumented replay did not violate the invariant")
		os.Exit(1)
	}
	fmt.Println("(uninstrumented implementation replays to the same violating state)")

	// The witness serializes to a self-contained JSON artifact — the same
	// format the golden-trace test commits under testdata/.
	raw, err := ad.MarshalWitness(bug.Violation.Invariant, bug.System.Fingerprint(), bug.Schedule)
	if err != nil {
		fmt.Println("marshal witness:", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Printf("JSON repro artifact (%d bytes):\n", len(raw))
	os.Stdout.Write(raw)
}
