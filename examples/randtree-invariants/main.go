// RandTree invariants: the paper's §4 example of invariant-specific
// checking without any Cartesian combination. RandTree's key invariant —
// "in all node states the children and siblings must be disjoint sets" —
// is node-local, so the local checker evaluates it directly on each
// visited node state: no system states, no soundness products over other
// nodes.
//
// The example checks a correct 5-node overlay (clean) and a variant with
// an off-by-one in the welcome message (the parent snapshots its children
// after inserting the joiner, so the joiner appears in its own sibling
// list), which the checker catches with a short witness schedule.
package main

import (
	"fmt"
	"log"
	"time"

	"lmc"
	"lmc/internal/protocols/randtree"
)

func run(bug randtree.BugKind) {
	m := randtree.New(5, 2, bug)
	res := lmc.Check(m, lmc.InitialSystem(m), lmc.Options{
		LocalInvariants: []lmc.LocalInvariant{randtree.Structure()},
		StopAtFirstBug:  true,
		Budget:          30 * time.Second,
	})
	fmt.Printf("%s: %d node states, %d transitions, %d bugs (%v)\n",
		m.Name(), res.Stats.NodeStates, res.Stats.Transitions,
		len(res.Bugs), res.Stats.Elapsed.Round(time.Millisecond))
	for _, b := range res.Bugs {
		fmt.Printf("  %v\n", b.Violation)
		fmt.Print(b.Schedule.String())
		if err := lmc.Replay(m, lmc.InitialSystem(m), b.Schedule); err != nil {
			log.Fatalf("witness does not replay: %v", err)
		}
		fmt.Println("  (witness replayed successfully)")
	}
	fmt.Println()
}

func main() {
	fmt.Println("RandTree-style overlay: 5 nodes joining through the root, fanout 2.")
	fmt.Println("Invariant (node-local): children ∩ siblings = ∅, no self references.")
	fmt.Println()
	run(randtree.NoBug)
	run(randtree.SelfSiblingBug)
}
