// Quickstart: the paper's §2 primer on the 5-node tree, run through the
// public API — the classic global checker against the local one, showing
// the state-count gap and the invalid system state that soundness
// verification rejects.
package main

import (
	"fmt"

	"lmc"
	"lmc/internal/protocols/tree"
)

func main() {
	m := tree.NewPaperTree()
	inv := m.CausalityInvariant()
	start := lmc.InitialSystem(m)

	fmt.Println("The §2 primer: node N1 initiates a message that is forwarded")
	fmt.Println("down a 5-node tree to N5. The invariant: if N5 received, N1 sent.")
	fmt.Println()

	g := lmc.Global(m, start, lmc.GlobalOptions{Invariant: inv})
	fmt.Printf("global checker (B-DFS): %d global states, %d transitions, %d bugs\n",
		g.Stats.GlobalStates, g.Stats.Transitions, len(g.Bugs))

	l := lmc.Check(m, start, lmc.Options{Invariant: inv})
	fmt.Printf("local checker (LMC):    %d node states, %d transitions, %d bugs\n",
		l.Stats.NodeStates, l.Stats.Transitions, len(l.Bugs))
	fmt.Printf("                        %d system states materialized, %d preliminary violation(s)\n",
		l.Stats.SystemStates, l.Stats.PreliminaryViolations)
	fmt.Println()
	fmt.Println("The preliminary violations are combinations like (root idle, leaf")
	fmt.Println("received) — the \"----r\" state of Figure 4. They cannot occur in a")
	fmt.Printf("real run, and soundness verification rejected all of them: %d sound.\n",
		l.Stats.ConfirmedBugs)

	// Now flip the invariant into one that valid runs do violate, to see a
	// confirmed counterexample with its realizing schedule.
	never := lmc.InvariantFunc{
		InvName: "target-never-receives",
		Fn: func(ss lmc.SystemState) *lmc.Violation {
			if ss[4].(*tree.State).St == tree.Received {
				v := lmc.Violation{Invariant: "target-never-receives",
					Detail: "N5 received the message", System: ss.Clone()}
				return &v
			}
			return nil
		},
	}
	res := lmc.Check(m, start, lmc.Options{Invariant: never, StopAtFirstBug: true})
	if len(res.Bugs) > 0 {
		fmt.Println()
		fmt.Println("A property valid runs do violate yields a witness schedule:")
		fmt.Print(res.Bugs[0].Schedule.String())
		if err := lmc.Replay(m, start, res.Bugs[0].Schedule); err != nil {
			fmt.Println("replay failed:", err)
		} else {
			fmt.Println("(replayed successfully against the real handlers)")
		}
	}
}
