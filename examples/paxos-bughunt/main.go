// Paxos bughunt: the paper's §5.5 experiment. A known bug from a previous
// Paxos implementation (reported by WiDS Checker) is injected: when the
// proposer's PrepareResponse majority completes, it adopts the value
// submitted in the last received response instead of the value of the
// response with the highest accepted ballot.
//
// The example runs the experiment both ways:
//
//  1. offline — the checker starts from the exact live state the paper
//     describes (N1 proposed v1 for index 0, N1 and N2 accepted, only N1
//     learned) and rediscovers the violation;
//  2. online — a live, lossy 3-node deployment runs with each node
//     proposing its id for fresh indexes at random times, and the checker
//     restarts from a snapshot every simulated minute until it confirms a
//     violation (the paper's detection took 1150 simulated seconds).
package main

import (
	"fmt"
	"log"
	"time"

	"lmc"
	"lmc/internal/protocols/paxos"
)

func main() {
	offline()
	online()
}

func offline() {
	m := paxos.New(3, paxos.LastResponseBug, paxos.ActiveIndex{MaxPerNode: 1})
	live, err := paxos.PaperLiveState(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== offline: checking from the paper's crafted live state ==")
	for n, s := range live {
		fmt.Printf("  live state of N%d: %s\n", n+1, s.String())
	}
	res := lmc.Check(m, live, lmc.Options{
		Invariant:      paxos.Agreement(),
		Reduction:      paxos.Reduction{},
		StopAtFirstBug: true,
		Budget:         60 * time.Second,
	})
	report(res)
}

func online() {
	fmt.Println("== online: live lossy deployment, checker restarted every minute ==")
	m := paxos.New(3, paxos.LastResponseBug, paxos.ActiveIndex{})
	live := lmc.NewSim(lmc.SimConfig{
		Machine:   m,
		Net:       lmc.NetConfig{Seed: 11, DropProb: 0.3},
		Seed:      7,
		AppPeriod: 60,
		App:       paxos.LiveApp(m.P),
	})
	rep := lmc.Online(live, lmc.OnlineConfig{
		Machine:    m,
		Interval:   60,
		MaxSimTime: 4 * 3600,
		Checker: lmc.Options{
			Invariant:      paxos.Agreement(),
			Reduction:      paxos.Reduction{},
			StopAtFirstBug: true,
			Budget:         2 * time.Second,
			LocalBoundStep: 1,
			MaxLocalBound:  3,
		},
		StopAtFirstBug: true,
	})
	if rep.FirstBug == nil {
		fmt.Println("  no violation detected (try another seed)")
		return
	}
	fmt.Printf("  detected at simulated time %.0f s after %d checker restart(s); wall %v\n",
		rep.DetectionSimTime, len(rep.Runs), rep.DetectionWall.Round(time.Millisecond))
	fmt.Printf("  violation: %v\n", rep.FirstBug.Violation)
	fmt.Println("  witness schedule:")
	fmt.Print(rep.FirstBug.Schedule.String())
}

func report(res *lmc.Result) {
	if len(res.Bugs) == 0 {
		fmt.Println("  no bug found")
		return
	}
	bug := res.Bugs[0]
	fmt.Printf("  found in %v (%d soundness calls, %d sequences checked)\n",
		res.Stats.Elapsed.Round(time.Millisecond),
		res.Stats.SoundnessCalls, res.Stats.SequencesChecked)
	fmt.Printf("  violation: %v\n", bug.Violation)
	fmt.Println("  witness schedule:")
	fmt.Print(bug.Schedule.String())
	fmt.Println()
}
