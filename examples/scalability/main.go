// Scalability: the paper's §5.2 experiment. On the two-proposal Paxos
// space (two nodes competing for the same index) the exponential explosion
// eventually catches both checkers: neither finishes; the interesting
// number is how deep each gets within a fixed budget. The paper, after
// hours: B-DFS reached depth 20 of 41, LMC depth 39 of 68, with soundness
// verification the dominant cost on the LMC side.
package main

import (
	"flag"
	"fmt"
	"time"

	"lmc"
	"lmc/internal/protocols/paxos"
)

func main() {
	budget := flag.Duration("budget", 15*time.Second, "budget per checker")
	flag.Parse()

	m := paxos.New(3, paxos.NoBug, paxos.EachOnce{Nodes: []lmc.NodeID{0, 1}, Index: 0})
	start := lmc.InitialSystem(m)

	fmt.Printf("two-proposal Paxos space, %v per checker\n\n", *budget)

	g := lmc.Global(m, start, lmc.GlobalOptions{
		Invariant: paxos.Agreement(),
		Strategy:  lmc.BFS,
		Budget:    *budget,
	})
	fmt.Printf("B-DFS:   depth %2d, %8d transitions, %8d global states, complete=%v\n",
		g.Stats.MaxDepth, g.Stats.Transitions, g.Stats.GlobalStates, g.Complete)

	l := lmc.Check(m, start, lmc.Options{
		Invariant:      paxos.Agreement(),
		Reduction:      paxos.Reduction{},
		Budget:         *budget,
		LocalBoundStep: 1,
		MaxLocalBound:  4,
	})
	fmt.Printf("LMC-OPT: depth %2d, %8d transitions, %8d node states,   complete=%v\n",
		l.Stats.MaxDepth, l.Stats.Transitions, l.Stats.NodeStates, l.Complete)
	fmt.Printf("         soundness: %d calls, %v total, %d sequences\n",
		l.Stats.SoundnessCalls, l.Stats.SoundnessTime.Round(time.Millisecond),
		l.Stats.SequencesChecked)
	fmt.Println()
	fmt.Println("paper: after hours, B-DFS explored to depth 20 (of 41) and LMC to 39")
	fmt.Println("(of 68); \"the major contributor to the slowdown of LMC is the")
	fmt.Println("expensive task of soundness verification\" — visible above.")
}
